//! The event-driven multi-processor, multi-stream execution engine.
//!
//! Each processor issues at most one operation per cycle, chosen fairly
//! from its *ready* streams (§2.2: "a processor switches among its streams
//! every cycle, executing instructions from non-blocked streams in a fair
//! manner"). A stream is blocked while
//!
//! * a register it needs is still in flight from memory (loads complete
//!   `mem_latency` cycles after issue),
//! * its outstanding-memory-operation window (8 on the MTA-2) is full, or
//! * a synchronous full/empty operation keeps bouncing (it retries every
//!   `sync_retry_cycles`).
//!
//! The engine is event-driven — idle cycles are skipped, not iterated —
//! so simulation cost is `O(instructions · log streams)`.
//!
//! **Hotspots.** §2.2: "hotspots can occur. Usually these can be worked
//! around in software, but they do occasionally impact performance."
//! Atomic (`int_fetch_add`) and synchronous (full/empty) operations on
//! the *same word* serialize at the memory module: each such operation
//! occupies the word for one cycle, so a word-level hotspot drains at
//! one atomic per cycle regardless of how many streams pile onto it.
//! Ordinary loads/stores are not serialized (the real machine's banked,
//! hashed memory gives them full throughput).
//!
//! **LIW packing.** The MTA-2 issues one *three-wide* instruction per
//! cycle: a memory operation, a fused multiply-add, and a control op
//! (§2.2). Our micro-ISA expresses those as separate operations, so the
//! engine accounts time in **thirds of a cycle**: a memory operation
//! consumes a full issue slot (3 thirds — preserving the one-word-per-
//! processor-per-cycle memory port), while ALU and control operations
//! consume one third, exactly the capacity of the two non-memory lanes.
//! Utilization is the fraction of issue-slot thirds filled.
//!
//! Functional semantics note: operations take effect in issue order, which
//! the engine generates in global time order across processors. This is a
//! sequentially-consistent interleaving — exactly the setting the paper's
//! racy-but-correct SV code (Alg. 3) is designed for.
//!
//! **Trace batching.** The default engine ([`MtaEngine::Trace`]) executes a
//! whole *private run* — straight-line ALU operations plus the trailing
//! branch/jump/halt, none of which touch memory or other streams — per
//! scheduler visit instead of re-entering the ready queue after every
//! instruction, following taken branches into further runs while it can.
//! The run boundaries come from the per-program
//! [`crate::isa::TraceTable`]; a batch is taken only when (a) every
//! register the run reads is already available, and (b) the run's issue
//! slots all precede the ready queue's front event (the *preemption
//! horizon*), so the interleaving the single-step engine would produce is
//! provably unchanged. Everything else — terminators,
//! stalled streams, lookahead-window waits — falls back to the single-step
//! path, which is also available wholesale as [`MtaEngine::SingleStep`],
//! the differential oracle. DESIGN.md gives the full schedule-preservation
//! argument.
//!
//! **Threaded code.** The third engine ([`MtaEngine::Compiled`]) keeps the
//! trace engine's batching rule but replaces interpretation entirely: at
//! [`Program`] build time every instruction is lowered to a fused 16-byte
//! micro-op (see [`crate::compiled`]), and the issue loop dispatches on a
//! pre-decoded opcode byte with run bodies retiring through a function
//! table — no per-instruction `match`, no side-table lookups.

use std::cell::Cell;
use std::sync::OnceLock;

use archgraph_core::error::{configured_max_cycles, SimError};
use archgraph_core::MtaParams;

use crate::fault::BlockTracker;
use crate::isa::{Instr, OpClass, Program, NREGS, N_OP_CLASSES};
use crate::memory::Memory;
use crate::report::{EngineStats, RunReport};
use crate::wheel::TimeWheel;

/// Default simulated memory size in words.
pub const DEFAULT_MEMORY_WORDS: usize = 1 << 22;

/// Per-instruction scheduling metadata, decoded once per [`MtaMachine::run`]
/// so the issue loop reads a flat array instead of re-matching the opcode.
///
/// Source registers are stored as indices with "no operand" mapped to
/// register 0: `reg_ready[0]` is pinned at 0 (r0 is never written), so the
/// readiness max over both slots is branch-free and exact.
///
/// The per-pc trace metadata ([`crate::isa::TraceTable`]) is folded in so
/// the trace engine's batch gate reads the same 12-byte record the
/// single-step path already has in cache.
#[derive(Clone, Copy)]
pub(crate) struct Decoded {
    /// External use-set of the private run starting here (see
    /// [`crate::isa::TraceTable`]).
    pub(crate) use_mask: u32,
    pub(crate) src0: u8,
    pub(crate) src1: u8,
    /// Issue-slot thirds this operation consumes (memory 3, other 1).
    pub(crate) cost: u8,
    pub(crate) is_memory: bool,
    pub(crate) class_idx: u8,
    /// Private run length starting here, saturated at `u8::MAX` (a batch
    /// longer than 255 is beyond every horizon this engine meets).
    pub(crate) run_len: u8,
    /// Whether that run ends with a trailing control op.
    pub(crate) tail: bool,
    /// Single-byte gate for the issue loop: true iff batching is on and a
    /// visit here could cover ≥ 2 instructions — a run of at least two,
    /// or a trailing control op whose taken edge may reveal a further
    /// run. Pinned false under the single-step oracle.
    pub(crate) batchable: bool,
}

pub(crate) fn decode(prog: &Program, batching: bool) -> Vec<Decoded> {
    let traces = prog.traces();
    prog.instrs()
        .iter()
        .enumerate()
        .map(|(pc, i)| {
            let [a, b] = i.sources();
            // Saturate long runs at 255 body ops; the trailing control op
            // of a truncated run lies beyond the cap, so drop its flag.
            let full = traces.run_len(pc);
            let (run_len, tail) = if full > u8::MAX.into() {
                (u8::MAX, false)
            } else {
                (full as u8, traces.has_tail(pc))
            };
            Decoded {
                use_mask: traces.use_mask(pc),
                src0: a.map_or(0, |r| r.0),
                src1: b.map_or(0, |r| r.0),
                cost: if i.is_memory() { 3 } else { 1 },
                is_memory: i.is_memory(),
                class_idx: i.class().index() as u8,
                run_len,
                tail,
                batchable: batching && (run_len >= 2 || tail),
            }
        })
        .collect()
}

/// Open-addressed map from word address to the next time (in thirds) that
/// word can service an atomic/sync operation.
///
/// This sits on the hotspot-serialization path, which a `fetch_add`-heavy
/// region hits once per atomic; the former `HashMap<usize, u64>` spent most
/// of its time in SipHash. Keys are stored as `addr + 1` so 0 marks an
/// empty slot; lookup is Fibonacci hashing plus linear probing, and the
/// table doubles at 3/4 load.
pub(crate) struct WordFree {
    keys: Vec<usize>,
    vals: Vec<u64>,
    mask: usize,
    len: usize,
}

impl WordFree {
    pub(crate) fn new() -> Self {
        let cap = 64;
        WordFree {
            keys: vec![0; cap],
            vals: vec![0; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    #[inline]
    fn bucket(key: usize, mask: usize) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & mask
    }

    /// Mutable slot for `addr`, inserting 0 if absent — the moral
    /// equivalent of `HashMap::entry(addr).or_insert(0)`.
    #[inline]
    pub(crate) fn slot(&mut self, addr: usize) -> &mut u64 {
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let key = addr + 1;
        let mut i = Self::bucket(key, self.mask);
        loop {
            let k = self.keys[i];
            if k == key {
                return &mut self.vals[i];
            }
            if k == 0 {
                self.keys[i] = key;
                self.len += 1;
                return &mut self.vals[i];
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.keys.len() * 2;
        let mask = cap - 1;
        let mut keys = vec![0usize; cap];
        let mut vals = vec![0u64; cap];
        for (k, v) in self.keys.iter().copied().zip(self.vals.iter().copied()) {
            if k == 0 {
                continue;
            }
            let mut i = Self::bucket(k, mask);
            while keys[i] != 0 {
                i = (i + 1) & mask;
            }
            keys[i] = k;
            vals[i] = v;
        }
        self.keys = keys;
        self.vals = vals;
        self.mask = mask;
    }
}

/// Which issue-loop strategy [`MtaMachine::run`] uses. All three produce
/// bit-identical [`RunReport`]s and memory states; they differ only in
/// host-side speed (see [`EngineStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MtaEngine {
    /// Execute whole ALU runs per scheduler visit (the default).
    #[default]
    Trace,
    /// One instruction per scheduler visit — the differential oracle the
    /// batching engines are checked against.
    SingleStep,
    /// Threaded code: run the build-time micro-op lowering (see
    /// [`crate::compiled`]) with the trace engine's batching rule — the
    /// fastest engine on interpreter-bound workloads.
    Compiled,
    /// Partitioned time wheel: shard streams across worker partitions
    /// (whole processors each), execute bounded time windows in parallel,
    /// and apply cross-partition memory operations at each window
    /// barrier in `(time, stream_id)` order through an address-sharded
    /// parallel merge (see [`crate::partition`]). Full/empty sync
    /// programs run on this path too (locally decidable outcomes ride
    /// the window log; undecidable ones resolve at round frontiers).
    /// Bit-identical to the oracle for every worker count — reports,
    /// memory images, and deadlock diagnostics alike; the only engine
    /// that uses more than one host core for a single region.
    Partitioned,
}

thread_local! {
    static ENGINE_OVERRIDE: Cell<Option<MtaEngine>> = const { Cell::new(None) };
}

/// Run `f` with every [`MtaMachine`] constructed on this thread using
/// `engine`. The kernels build their machines internally, so a constructor
/// argument cannot reach them; this scoped override can. Panic-safe and
/// nestable; the previous override is restored on exit.
pub fn with_engine<R>(engine: MtaEngine, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<MtaEngine>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ENGINE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(ENGINE_OVERRIDE.with(|c| c.replace(Some(engine))));
    f()
}

/// Engine for newly constructed machines: the [`with_engine`] override if
/// one is active, else `ARCHGRAPH_MTA_ENGINE` (`single-step` selects the
/// oracle, `compiled` the threaded-code engine; anything else, or unset,
/// selects `Trace`).
fn configured_engine() -> MtaEngine {
    if let Some(e) = ENGINE_OVERRIDE.with(|c| c.get()) {
        return e;
    }
    static ENV: OnceLock<MtaEngine> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("ARCHGRAPH_MTA_ENGINE").as_deref() {
        Ok("single-step" | "single_step" | "oracle") => MtaEngine::SingleStep,
        Ok("compiled" | "threaded") => MtaEngine::Compiled,
        Ok("partitioned" | "parallel") => MtaEngine::Partitioned,
        _ => MtaEngine::Trace,
    })
}

thread_local! {
    static WORKERS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with every [`MtaMachine`] constructed on this thread using
/// `workers` partitions under [`MtaEngine::Partitioned`] (the differential
/// suite sweeps `W ∈ {1, 2, 4, 8}` through this). Panic-safe and
/// nestable, like [`with_engine`]. Worker count never affects any
/// simulated quantity — only host-side parallelism.
pub fn with_workers<R>(workers: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKERS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(WORKERS_OVERRIDE.with(|c| c.replace(Some(workers.max(1)))));
    f()
}

/// Worker-partition count for newly constructed machines: the
/// [`with_workers`] override if one is active, else `ARCHGRAPH_MTA_WORKERS`
/// (clamped to ≥ 1), else the host's available parallelism. Only
/// [`MtaEngine::Partitioned`] reads it.
fn configured_workers() -> usize {
    if let Some(w) = WORKERS_OVERRIDE.with(|c| c.get()) {
        return w;
    }
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    if let Some(w) = *ENV.get_or_init(|| {
        std::env::var("ARCHGRAPH_MTA_WORKERS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map(|w| w.max(1))
    }) {
        return w;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A committed trace batch: the processor clock after its last issue
/// slot, the instructions executed, and whether the stream halted.
pub(crate) struct BatchDone {
    pub(crate) clock: u64,
    pub(crate) n_exec: u64,
    pub(crate) halted: bool,
}

/// The preemption-horizon limit for a batch attempt by stream `id`: a
/// batched slot `u` is exact iff the single-step engine would pop
/// `(u, id)` before the queue's front `(ht, hid)`. The front over *all*
/// processors is conservative — other processors' events commute with
/// private ops — but never wrong. No pending event → no limit.
#[inline]
pub(crate) fn batch_limit(wheel: &mut TimeWheel, id: u32) -> u64 {
    match wheel.peek() {
        None => u64::MAX,
        Some((ht, hid)) => ht + u64::from(id < hid),
    }
}

/// The trace-batch fast path: execute the private run starting at `s.pc`
/// — ALU body plus trailing branch/jump/halt — following taken branches
/// into further runs while every issue slot stays under `limit` (the
/// caller-computed preemption horizon, see [`batch_limit`]; the
/// partitioned engine additionally caps it at its epoch end) and every
/// register read is ready. Returns `None` (stream untouched) when no
/// instruction could be batched; the caller then takes the single-step
/// path. Kept out of line so the issue loop's per-event code stays
/// compact; `Decoded::batchable` gates entry.
#[inline(never)]
pub(crate) fn try_batch(
    limit: u64,
    s: &mut Stream,
    instrs: &[Instr],
    decoded: &[Decoded],
    d: Decoded,
    issue_at: u64,
    op_mix: &mut [u64; N_OP_CLASSES],
) -> Option<BatchDone> {
    let mut dr = d;
    let mut at = issue_at;
    let mut halted = false;
    let mut n_exec = 0u64;
    // Two free slots minimum up front: a 1-op batch is exactly the
    // single-step path, at higher cost.
    while limit.saturating_sub(at) >= 2 || n_exec > 0 {
        let run = u64::from(dr.run_len);
        let fits = limit.saturating_sub(at).min(run);
        // A 1-op continuation is still exact — past the first iteration
        // any fit ≥ 1 proceeds (a lone branch visit extends into the run
        // its taken edge reveals).
        if fits == 0 {
            break;
        }
        let mut mask = dr.use_mask;
        let mut rmax = 0u64;
        while mask != 0 {
            let r = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            rmax = rmax.max(s.reg_ready[r]);
        }
        if rmax > at {
            break;
        }
        let tail = dr.tail && fits == run;
        let body = (fits - u64::from(tail)) as usize;
        for k in 0..body {
            alu_step(s, instrs[s.pc + k], at + k as u64);
        }
        op_mix[OpClass::Alu.index()] += body as u64;
        s.pc += body;
        at += body as u64;
        n_exec += fits;
        if tail {
            op_mix[decoded[s.pc].class_idx as usize] += 1;
            at += 1;
            let next = s.pc + 1;
            match instrs[s.pc] {
                Instr::Beq { a, b, target } => {
                    s.pc = if s.regs[a.0 as usize] == s.regs[b.0 as usize] {
                        target
                    } else {
                        next
                    };
                }
                Instr::Bne { a, b, target } => {
                    s.pc = if s.regs[a.0 as usize] != s.regs[b.0 as usize] {
                        target
                    } else {
                        next
                    };
                }
                Instr::Blt { a, b, target } => {
                    s.pc = if s.regs[a.0 as usize] < s.regs[b.0 as usize] {
                        target
                    } else {
                        next
                    };
                }
                Instr::Bge { a, b, target } => {
                    s.pc = if s.regs[a.0 as usize] >= s.regs[b.0 as usize] {
                        target
                    } else {
                        next
                    };
                }
                Instr::Jmp { target } => s.pc = target,
                _ => {
                    // `halt` (nothing else is a tail).
                    halted = true;
                }
            }
        }
        if halted || s.pc >= instrs.len() {
            halted = true;
            break;
        }
        if !tail {
            // Horizon or readiness cut the body short.
            break;
        }
        dr = decoded[s.pc];
    }
    (n_exec > 0).then_some(BatchDone {
        clock: at,
        n_exec,
        halted,
    })
}

/// Execute one ALU-class instruction at issue time `ia` (a trace-batch
/// body step; terminators never come through here).
#[inline]
pub(crate) fn alu_step(s: &mut Stream, instr: Instr, ia: u64) {
    let (dst, v) = match instr {
        Instr::Li { dst, imm } => (dst, imm),
        Instr::Mov { dst, src } => (dst, s.regs[src.0 as usize]),
        Instr::Add { dst, a, b } => (dst, s.regs[a.0 as usize].wrapping_add(s.regs[b.0 as usize])),
        Instr::AddI { dst, a, imm } => (dst, s.regs[a.0 as usize].wrapping_add(imm)),
        Instr::Sub { dst, a, b } => (dst, s.regs[a.0 as usize].wrapping_sub(s.regs[b.0 as usize])),
        Instr::Mul { dst, a, b } => (dst, s.regs[a.0 as usize].wrapping_mul(s.regs[b.0 as usize])),
        _ => unreachable!("trace bodies contain only ALU operations"),
    };
    let di = dst.0 as usize;
    if di != 0 {
        s.regs[di] = v;
        s.reg_ready[di] = ia + 1;
    }
}

/// Capacity of the inline outstanding-operation ring. The engine keeps at
/// most `lookahead` completions in flight per stream (MTA-2: 8), and the
/// ring lives inside [`Stream`] so the scheduler never chases a separate
/// heap allocation on the per-event path.
pub(crate) const MAX_LOOKAHEAD: usize = 16;

#[derive(Debug, Clone)]
pub(crate) struct Stream {
    pub(crate) regs: [i64; NREGS],
    pub(crate) reg_ready: [u64; NREGS],
    pub(crate) pc: usize,
    /// In-flight completion times, a FIFO ring of at most `lookahead`.
    outstanding: [u64; MAX_LOOKAHEAD],
    out_head: u8,
    pub(crate) out_len: u8,
    pub(crate) halted: bool,
}

impl Stream {
    fn new(id: usize) -> Self {
        let mut regs = [0i64; NREGS];
        regs[1] = id as i64; // STREAM_ID convention
        Stream {
            regs,
            reg_ready: [0; NREGS],
            pc: 0,
            outstanding: [0; MAX_LOOKAHEAD],
            out_head: 0,
            out_len: 0,
            halted: false,
        }
    }

    #[inline]
    pub(crate) fn out_front(&self) -> Option<u64> {
        if self.out_len == 0 {
            None
        } else {
            Some(self.outstanding[self.out_head as usize])
        }
    }

    #[inline]
    pub(crate) fn out_pop(&mut self) {
        debug_assert!(self.out_len > 0);
        self.out_head = (self.out_head + 1) % MAX_LOOKAHEAD as u8;
        self.out_len -= 1;
    }

    #[inline]
    pub(crate) fn out_push(&mut self, done: u64) {
        debug_assert!((self.out_len as usize) < MAX_LOOKAHEAD);
        let i = (self.out_head as usize + self.out_len as usize) % MAX_LOOKAHEAD;
        self.outstanding[i] = done;
        self.out_len += 1;
    }

    /// Absolute ring index the next [`Self::out_push`] will land in.
    /// Absolute indices are stable under pops (only `out_head` moves), so
    /// the partitioned engine can address a provisional completion for its
    /// merge-phase fix-up.
    #[inline]
    pub(crate) fn out_next_slot(&self) -> usize {
        (self.out_head as usize + self.out_len as usize) % MAX_LOOKAHEAD
    }

    /// Absolute ring index of the current front entry.
    #[inline]
    pub(crate) fn out_front_slot(&self) -> usize {
        self.out_head as usize
    }

    /// Overwrite the completion time in absolute ring slot `slot` (the
    /// partitioned engine replacing a provisional fetch-add completion
    /// with the hotspot-serialized true time).
    #[inline]
    pub(crate) fn out_set_slot(&mut self, slot: usize, done: u64) {
        self.outstanding[slot] = done;
    }
}

/// A simulated MTA system: `p` processors over one flat shared memory.
#[derive(Debug)]
pub struct MtaMachine {
    params: MtaParams,
    p: usize,
    memory: Memory,
    total_cycles: u64,
    host_seconds: f64,
    engine: MtaEngine,
    /// Worker-partition count for [`MtaEngine::Partitioned`] (ignored by
    /// the serial engines). Clamped to the processor count at run time;
    /// never affects simulated quantities.
    workers: usize,
    engine_stats: EngineStats,
    reports: Vec<RunReport>,
    /// Watchdog budget in simulated cycles; a region that would pop an
    /// event past this returns [`SimError::CycleBudgetExceeded`].
    max_cycles: u64,
    /// Reusable scratch (the register arena) for the compiled engine —
    /// carrying it across [`Self::run`] calls avoids an allocation per
    /// region.
    compiled_scratch: Option<crate::compiled::EngineScratch>,
}

impl MtaMachine {
    /// A machine with `p` processors and the default memory size.
    pub fn new(params: MtaParams, p: usize) -> Self {
        Self::with_memory_words(params, p, DEFAULT_MEMORY_WORDS)
    }

    /// A machine with an explicit memory size in words.
    pub fn with_memory_words(params: MtaParams, p: usize, words: usize) -> Self {
        assert!(p >= 1, "need at least one processor");
        MtaMachine {
            params,
            p,
            memory: Memory::new(words),
            total_cycles: 0,
            host_seconds: 0.0,
            engine: configured_engine(),
            workers: configured_workers(),
            engine_stats: EngineStats::default(),
            reports: Vec::new(),
            max_cycles: configured_max_cycles(),
            compiled_scratch: None,
        }
    }

    /// The watchdog cycle budget (default: `ARCHGRAPH_MAX_CYCLES`, else
    /// [`archgraph_core::error::DEFAULT_MAX_CYCLES`]).
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Override the watchdog cycle budget for subsequent runs. The budget
    /// bounds each region, not the machine lifetime; a region whose event
    /// clock passes it returns [`SimError::CycleBudgetExceeded`] from
    /// [`Self::try_run`] (and panics from [`Self::run`]). Clamped to ≥ 1.
    pub fn set_max_cycles(&mut self, cycles: u64) {
        self.max_cycles = cycles.max(1);
    }

    /// The issue-loop engine this machine runs with.
    pub fn engine(&self) -> MtaEngine {
        self.engine
    }

    /// Override the engine for subsequent [`Self::run`] calls (differential
    /// tests; normal construction follows [`with_engine`] / the
    /// `ARCHGRAPH_MTA_ENGINE` environment variable).
    pub fn set_engine(&mut self, engine: MtaEngine) {
        self.engine = engine;
    }

    /// Worker-partition count the partitioned engine will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Override the worker-partition count for subsequent [`Self::run`]
    /// calls (normal construction follows [`with_workers`] / the
    /// `ARCHGRAPH_MTA_WORKERS` environment variable). Clamped to ≥ 1.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Issue-loop accounting accumulated over all regions run so far.
    /// Host-side measurement, like [`Self::host_seconds`] — deliberately
    /// kept out of [`RunReport`] so reports compare bit-identical across
    /// engines.
    pub fn engine_stats(&self) -> EngineStats {
        self.engine_stats
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Machine parameters.
    pub fn params(&self) -> &MtaParams {
        &self.params
    }

    /// Shared memory (host-side inspection).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Shared memory (allocation / initialization).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Cycles accumulated over all regions run so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Seconds accumulated over all regions run so far.
    pub fn total_seconds(&self) -> f64 {
        self.total_cycles as f64 * self.params.cycle_seconds()
    }

    /// Host wall-clock seconds spent interpreting regions so far. This is
    /// measurement of the simulator itself (for the bench harness), not a
    /// simulated quantity, and is deliberately kept out of [`RunReport`].
    pub fn host_seconds(&self) -> f64 {
        self.host_seconds
    }

    /// Per-region reports in execution order.
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// Execute `prog` as one parallel region on `streams_per_proc` streams
    /// per processor. Every stream starts at instruction 0 with `r0 = 0`
    /// and `r1 = global stream index`; `init` may set further registers.
    /// Returns the region report (also appended to [`Self::reports`]).
    ///
    /// Panics with the [`SimError`] display text if the region deadlocks
    /// or exhausts the watchdog budget; use [`Self::try_run`] to handle
    /// those failures structurally.
    pub fn run<F: FnMut(usize, &mut [i64; NREGS])>(
        &mut self,
        prog: &Program,
        streams_per_proc: usize,
        init: F,
    ) -> RunReport {
        self.try_run(prog, streams_per_proc, init)
            .unwrap_or_else(|e| panic!("mta region failed: {e}"))
    }

    /// [`Self::run`], but a deadlocked region returns
    /// [`SimError::Deadlock`] (with per-stream diagnostics that are
    /// bit-identical whichever engine detected it) and a region that
    /// outlives [`Self::max_cycles`] returns
    /// [`SimError::CycleBudgetExceeded`], instead of hanging forever or
    /// panicking. On error the machine's memory image reflects the
    /// operations issued up to the failure; no report is appended.
    pub fn try_run<F: FnMut(usize, &mut [i64; NREGS])>(
        &mut self,
        prog: &Program,
        streams_per_proc: usize,
        mut init: F,
    ) -> Result<RunReport, SimError> {
        let host_t0 = std::time::Instant::now();
        assert!(streams_per_proc >= 1, "need at least one stream");
        assert!(
            streams_per_proc <= self.params.streams_per_processor,
            "processor has only {} streams",
            self.params.streams_per_processor
        );
        let total = self.p * streams_per_proc;
        let mut streams: Vec<Stream> = (0..total).map(Stream::new).collect();
        for (id, s) in streams.iter_mut().enumerate() {
            init(id, &mut s.regs);
            s.regs[0] = 0;
        }

        // All engine-internal times are in thirds of a cycle (see the
        // module docs on LIW packing).
        let latency = self.params.mem_latency * 3;
        let lookahead = self.params.lookahead.max(1);
        assert!(
            lookahead <= MAX_LOOKAHEAD,
            "lookahead {lookahead} exceeds the engine's inline window of {MAX_LOOKAHEAD}"
        );
        let retry = self.params.sync_retry_cycles.max(1) * 3;
        let instrs = prog.instrs();
        // Watchdog budget in thirds. Every engine executes exactly the
        // events at times ≤ the boundary (batch horizons are capped at
        // boundary + 1) and fails on the first event past it, so the
        // error — like everything else — is engine-invariant.
        let budget_thirds = self.max_cycles.saturating_mul(3);

        let mem0 = self.memory.counters;
        let mut proc_clock = vec![0u64; self.p];
        let mut issued: u64 = 0;
        let mut issued_thirds: u64 = 0;
        let mut last_completion: u64 = 0;
        let mut op_mix = [0u64; N_OP_CLASSES];
        let mut stats = EngineStats::default();

        if self.engine == MtaEngine::Compiled {
            // Threaded code: same streams and memory, but the issue loop
            // reads the build-time micro-op lowering and drives its own
            // bitmap ready queue (identical pop order). The shared
            // epilogue below consumes its accumulators unchanged.
            let out = match crate::compiled::run_region(
                prog.compiled(),
                &mut self.memory,
                &mut streams,
                &mut proc_clock,
                &mut self.compiled_scratch,
                streams_per_proc,
                latency,
                lookahead,
                retry,
                self.max_cycles,
            ) {
                Ok(out) => out,
                Err(e) => {
                    self.host_seconds += host_t0.elapsed().as_secs_f64();
                    return Err(e);
                }
            };
            issued = out.issued;
            issued_thirds = out.issued_thirds;
            op_mix = out.op_mix;
            last_completion = out.last_completion;
            stats = out.stats;
        } else if self.engine == MtaEngine::Partitioned && latency >= 2 {
            // Partitioned time wheel: streams sharded across worker
            // partitions (whole processors each), bounded time windows,
            // shared-memory operations applied at each window barrier in
            // (time, stream_id) order through an address-sharded merge.
            // Full/empty sync programs run here too: locally decidable
            // outcomes ride the value log, undecidable ones stop their
            // partition and are resolved at the round frontier (see
            // crate::partition docs) — results stay exact either way.
            let out = match crate::partition::run_region(
                prog,
                &mut self.memory,
                &mut streams,
                &mut proc_clock,
                streams_per_proc,
                latency,
                retry,
                lookahead,
                self.workers,
                self.max_cycles,
                // Host-side accounting goes straight into the machine's
                // accumulator so `windows` survives error returns (the
                // guardrail suites assert on it for deadlocking regions).
                &mut self.engine_stats,
            ) {
                Ok(out) => out,
                Err(e) => {
                    self.host_seconds += host_t0.elapsed().as_secs_f64();
                    return Err(e);
                }
            };
            issued = out.issued;
            issued_thirds = out.issued_thirds;
            op_mix = out.op_mix;
            last_completion = out.last_completion;
        } else {
            // Ready queue keyed by earliest possible issue time; stream id
            // breaks ties, which combined with re-insertion at issue_time + 1
            // yields fair round-robin service. The wheel pops in exactly the
            // ascending (time, id) order a binary heap of Reverse((t, id))
            // entries would, so every simulated quantity is unchanged by the
            // queue representation.
            let mut wheel = TimeWheel::new(total);
            for id in 0..total {
                wheel.push(0, id as u32);
            }
            // Hotspot serialization: next cycle (in thirds) at which a word
            // can service another atomic/sync operation.
            let mut word_free = WordFree::new();
            // Scheduling metadata per instruction (including the trace-batch
            // gate), decoded once up front. The Partitioned arm here only
            // serves `latency < 2` parameterizations (no real machine —
            // the window width Δ = latency − 1 would be degenerate);
            // batching like Trace keeps it oracle-exact.
            let batching = matches!(self.engine, MtaEngine::Trace | MtaEngine::Partitioned);
            let decoded = decode(prog, batching);
            // Blocked/halted bookkeeping behind deadlock detection. Sync
            // and halt events are schedule-invariant (sync ops are never
            // batched), so every engine observes the same transitions.
            let mut tracker = BlockTracker::new(total);

            while let Some((t, id)) = wheel.pop() {
                if t > budget_thirds {
                    self.host_seconds += host_t0.elapsed().as_secs_f64();
                    return Err(SimError::CycleBudgetExceeded {
                        budget: self.max_cycles,
                        spent: t.div_ceil(3),
                        what: "mta cycles",
                    });
                }
                stats.events += 1;
                'ev: {
                    let proc = id as usize / streams_per_proc;
                    let s = &mut streams[id as usize];
                    debug_assert!(!s.halted);
                    if s.pc >= instrs.len() {
                        // Falling off the end halts the stream.
                        tracker.on_halt(id as usize);
                        if let Some(err) = tracker.deadlock(&self.memory) {
                            self.host_seconds += host_t0.elapsed().as_secs_f64();
                            return Err(err);
                        }
                        break 'ev;
                    }
                    let instr = instrs[s.pc];
                    let d = decoded[s.pc];

                    // Earliest time this stream can truly issue `instr`. Absent
                    // operands decode to r0, whose ready time is pinned at 0, so
                    // the two-way max is exact.
                    let mut e = t
                        .max(s.reg_ready[d.src0 as usize])
                        .max(s.reg_ready[d.src1 as usize]);
                    while let Some(c) = s.out_front() {
                        if c <= e {
                            s.out_pop();
                        } else {
                            break;
                        }
                    }
                    if d.is_memory && s.out_len as usize >= lookahead {
                        // The window is at its limit, so the ring holds
                        // `lookahead ≥ 1` entries and the front exists.
                        let c = s
                            .out_front()
                            .expect("outstanding ring at the lookahead limit is non-empty");
                        e = e.max(c);
                        s.out_pop();
                    }
                    if e > t {
                        // Not actually ready yet: requeue without consuming a slot.
                        wheel.push(e, id);
                        break 'ev;
                    }

                    // A stalled processor issues nothing inside its fault
                    // windows: the pure per-(proc, seed) adjustment pushes
                    // the issue slot past the window end, identically in
                    // every engine (DESIGN.md §8).
                    let issue_at = self
                        .memory
                        .fault_stall_adjust(proc, e.max(proc_clock[proc]));

                    // Trace fast path: execute the whole *private* run starting
                    // at this pc — the ALU body plus a trailing branch/jump/halt
                    // — in one visit, if doing so provably cannot change the
                    // schedule. Three gates (DESIGN.md has the full argument):
                    //   1. the visit could cover ≥ 2 instructions — a run of at
                    //      least two, or a control op whose taken edge may reveal
                    //      a further run (a 1-op batch is just the step below);
                    //   2. every register the run reads from outside itself is
                    //      ready by its issue slot, so no instruction would stall;
                    //   3. the run's issue slots all precede the queue's front
                    //      event — instruction k issues at `issue_at + k`, so the
                    //      single-step engine would pop it at that time too,
                    //      before popping any other stream's event. (The front
                    //      over all processors is conservative: other processors'
                    //      events commute with the batch, since private ops touch
                    //      only this stream's registers and pc and this
                    //      processor's clock, never memory or hotspot state.)
                    // After a taken branch the successor pc is known, so while
                    // the horizon holds, the batch keeps following control flow
                    // into further private runs (a loop of `add; bne` iterations
                    // can retire in a single visit).
                    if d.batchable {
                        // Stall windows additionally cap the horizon: no
                        // batched slot may land inside one. Conservative
                        // caps are exact by the batch-extent lemma.
                        let limit = batch_limit(&mut wheel, id)
                            .min(budget_thirds.saturating_add(1))
                            .min(self.memory.fault_next_stall(proc, issue_at));
                        if let Some(done) =
                            try_batch(limit, s, instrs, &decoded, d, issue_at, &mut op_mix)
                        {
                            proc_clock[proc] = done.clock;
                            issued += done.n_exec;
                            issued_thirds += done.n_exec;
                            if done.n_exec >= 2 {
                                stats.batches += 1;
                                stats.batched_instrs += done.n_exec;
                            }
                            if done.halted {
                                s.halted = true;
                                tracker.on_halt(id as usize);
                                if let Some(err) = tracker.deadlock(&self.memory) {
                                    self.host_seconds += host_t0.elapsed().as_secs_f64();
                                    return Err(err);
                                }
                                break 'ev;
                            }
                            let dn = decoded[s.pc];
                            let wake = done
                                .clock
                                .max(s.reg_ready[dn.src0 as usize])
                                .max(s.reg_ready[dn.src1 as usize]);
                            wheel.push(wake, id);
                            break 'ev;
                        }
                    }

                    // LIW lanes: memory ops fill the issue slot, ALU/control ops
                    // fill one of the three lanes.
                    let cost = u64::from(d.cost);
                    proc_clock[proc] = issue_at + cost;
                    issued += 1;
                    issued_thirds += cost;
                    op_mix[d.class_idx as usize] += 1;
                    let mut next_ready = issue_at + cost;
                    let mut next_pc = s.pc + 1;

                    macro_rules! wreg {
                        ($dst:expr, $val:expr, $ready:expr) => {{
                            let d = $dst.0 as usize;
                            if d != 0 {
                                s.regs[d] = $val;
                                s.reg_ready[d] = $ready;
                            }
                        }};
                    }

                    match instr {
                        Instr::Li { dst, imm } => wreg!(dst, imm, issue_at + 1),
                        Instr::Mov { dst, src } => {
                            wreg!(dst, s.regs[src.0 as usize], issue_at + 1)
                        }
                        Instr::Add { dst, a, b } => {
                            let v = s.regs[a.0 as usize].wrapping_add(s.regs[b.0 as usize]);
                            wreg!(dst, v, issue_at + 1)
                        }
                        Instr::AddI { dst, a, imm } => {
                            let v = s.regs[a.0 as usize].wrapping_add(imm);
                            wreg!(dst, v, issue_at + 1)
                        }
                        Instr::Sub { dst, a, b } => {
                            let v = s.regs[a.0 as usize].wrapping_sub(s.regs[b.0 as usize]);
                            wreg!(dst, v, issue_at + 1)
                        }
                        Instr::Mul { dst, a, b } => {
                            let v = s.regs[a.0 as usize].wrapping_mul(s.regs[b.0 as usize]);
                            wreg!(dst, v, issue_at + 1)
                        }
                        Instr::Load { dst, addr, off } => {
                            let a = (s.regs[addr.0 as usize] + off) as usize;
                            let v = self.memory.load(a);
                            let done = issue_at
                                + latency
                                + self.memory.fault_mem_extra(proc, a, issue_at, latency);
                            wreg!(dst, v, done);
                            s.out_push(done);
                            last_completion = last_completion.max(done);
                        }
                        Instr::Store { src, addr, off } => {
                            let a = (s.regs[addr.0 as usize] + off) as usize;
                            self.memory.store(a, s.regs[src.0 as usize]);
                            let done = issue_at
                                + latency
                                + self.memory.fault_mem_extra(proc, a, issue_at, latency);
                            s.out_push(done);
                            last_completion = last_completion.max(done);
                        }
                        Instr::ReadFE { dst, addr, off } => {
                            let a = (s.regs[addr.0 as usize] + off) as usize;
                            match self.memory.readfe(a) {
                                Some(v) => {
                                    tracker.on_sync_success(id as usize);
                                    let slot = word_free.slot(a);
                                    let service = (*slot).max(issue_at);
                                    *slot = service + 3;
                                    let done = service
                                        + latency
                                        + self.memory.fault_mem_extra(proc, a, issue_at, latency);
                                    wreg!(dst, v, done);
                                    s.out_push(done);
                                    last_completion = last_completion.max(done);
                                }
                                None => {
                                    tracker.on_sync_fail(id as usize, s.pc, a, "readfe", issue_at);
                                    if let Some(err) = tracker.deadlock(&self.memory) {
                                        self.host_seconds += host_t0.elapsed().as_secs_f64();
                                        return Err(err);
                                    }
                                    next_pc = s.pc; // retry the same op
                                    next_ready = issue_at + retry + self.memory.fault_wake_delay(a);
                                }
                            }
                        }
                        Instr::WriteEF { src, addr, off } => {
                            let a = (s.regs[addr.0 as usize] + off) as usize;
                            if self.memory.writeef(a, s.regs[src.0 as usize]) {
                                tracker.on_sync_success(id as usize);
                                let slot = word_free.slot(a);
                                let service = (*slot).max(issue_at);
                                *slot = service + 3;
                                let done = service
                                    + latency
                                    + self.memory.fault_mem_extra(proc, a, issue_at, latency);
                                s.out_push(done);
                                last_completion = last_completion.max(done);
                            } else {
                                tracker.on_sync_fail(id as usize, s.pc, a, "writeef", issue_at);
                                if let Some(err) = tracker.deadlock(&self.memory) {
                                    self.host_seconds += host_t0.elapsed().as_secs_f64();
                                    return Err(err);
                                }
                                next_pc = s.pc;
                                next_ready = issue_at + retry + self.memory.fault_wake_delay(a);
                            }
                        }
                        Instr::ReadFF { dst, addr, off } => {
                            let a = (s.regs[addr.0 as usize] + off) as usize;
                            match self.memory.readff(a) {
                                Some(v) => {
                                    tracker.on_sync_success(id as usize);
                                    let slot = word_free.slot(a);
                                    let service = (*slot).max(issue_at);
                                    *slot = service + 3;
                                    let done = service
                                        + latency
                                        + self.memory.fault_mem_extra(proc, a, issue_at, latency);
                                    wreg!(dst, v, done);
                                    s.out_push(done);
                                    last_completion = last_completion.max(done);
                                }
                                None => {
                                    tracker.on_sync_fail(id as usize, s.pc, a, "readff", issue_at);
                                    if let Some(err) = tracker.deadlock(&self.memory) {
                                        self.host_seconds += host_t0.elapsed().as_secs_f64();
                                        return Err(err);
                                    }
                                    next_pc = s.pc;
                                    next_ready = issue_at + retry + self.memory.fault_wake_delay(a);
                                }
                            }
                        }
                        Instr::FetchAdd {
                            dst,
                            addr,
                            off,
                            delta,
                        } => {
                            let a = (s.regs[addr.0 as usize] + off) as usize;
                            let old = self.memory.int_fetch_add(a, s.regs[delta.0 as usize]);
                            // Hotspot: atomics on one word drain at 1 per cycle.
                            let slot = word_free.slot(a);
                            let service = (*slot).max(issue_at);
                            *slot = service + 3;
                            let done = service
                                + latency
                                + self.memory.fault_mem_extra(proc, a, issue_at, latency);
                            wreg!(dst, old, done);
                            s.out_push(done);
                            last_completion = last_completion.max(done);
                        }
                        Instr::Beq { a, b, target } => {
                            if s.regs[a.0 as usize] == s.regs[b.0 as usize] {
                                next_pc = target;
                            }
                        }
                        Instr::Bne { a, b, target } => {
                            if s.regs[a.0 as usize] != s.regs[b.0 as usize] {
                                next_pc = target;
                            }
                        }
                        Instr::Blt { a, b, target } => {
                            if s.regs[a.0 as usize] < s.regs[b.0 as usize] {
                                next_pc = target;
                            }
                        }
                        Instr::Bge { a, b, target } => {
                            if s.regs[a.0 as usize] >= s.regs[b.0 as usize] {
                                next_pc = target;
                            }
                        }
                        Instr::Jmp { target } => next_pc = target,
                        Instr::Halt => {
                            s.halted = true;
                            tracker.on_halt(id as usize);
                            if let Some(err) = tracker.deadlock(&self.memory) {
                                self.host_seconds += host_t0.elapsed().as_secs_f64();
                                return Err(err);
                            }
                            break 'ev;
                        }
                    }

                    s.pc = next_pc;
                    if s.pc >= instrs.len() {
                        s.halted = true;
                        tracker.on_halt(id as usize);
                        if let Some(err) = tracker.deadlock(&self.memory) {
                            self.host_seconds += host_t0.elapsed().as_secs_f64();
                            return Err(err);
                        }
                        break 'ev;
                    }
                    // Wake the stream when its next instruction's sources are
                    // ready, not merely at `next_ready`: register ready times are
                    // this stream's own state, so folding them in now skips the
                    // pop that would only discover the stall and requeue. The
                    // issue time and order are unchanged — the readiness check
                    // above recomputes the same maximum.
                    let dn = decoded[s.pc];
                    let wake = next_ready
                        .max(s.reg_ready[dn.src0 as usize])
                        .max(s.reg_ready[dn.src1 as usize]);
                    wheel.push(wake, id);
                }
            }
        }

        let thirds = proc_clock
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(last_completion);
        let cycles = thirds.div_ceil(3);
        let mem1 = self.memory.counters;
        let mem = crate::memory::MemCounters {
            loads: mem1.loads - mem0.loads,
            stores: mem1.stores - mem0.stores,
            sync_ops: mem1.sync_ops - mem0.sync_ops,
            sync_retries: mem1.sync_retries - mem0.sync_retries,
            fetch_adds: mem1.fetch_adds - mem0.fetch_adds,
        };
        let report = RunReport {
            cycles,
            issued,
            issued_thirds,
            op_mix,
            processors: self.p,
            streams_per_processor: streams_per_proc,
            utilization: if thirds == 0 {
                0.0
            } else {
                issued_thirds as f64 / (thirds as f64 * self.p as f64)
            },
            mem,
            sync_retries: mem.sync_retries,
            seconds: cycles as f64 * self.params.cycle_seconds(),
        };
        self.total_cycles += cycles;
        self.host_seconds += host_t0.elapsed().as_secs_f64();
        self.engine_stats.events += stats.events;
        self.engine_stats.batches += stats.batches;
        self.engine_stats.batched_instrs += stats.batched_instrs;
        self.engine_stats.windows += stats.windows;
        self.reports.push(report.clone());
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{ProgramBuilder, Reg};

    fn tiny(p: usize) -> MtaMachine {
        MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), p, 1 << 16)
    }

    /// Program: each stream adds `r1 + 100` into memory[r1 + base].
    fn store_id_program(base: usize) -> Program {
        let mut b = ProgramBuilder::new();
        b.addi(Reg(2), Reg(1), 100);
        b.add(Reg(3), Reg(1), Reg(0));
        b.store(Reg(2), Reg(3), base as i64);
        b.halt();
        b.build()
    }

    #[test]
    fn single_stream_sequential_semantics() {
        let mut m = tiny(1);
        let base = m.memory_mut().alloc(4);
        let rep = m.run(&store_id_program(base), 1, |_, _| {});
        assert_eq!(m.memory().peek(base), 100);
        assert_eq!(rep.issued, 4);
        assert!(rep.cycles >= 4);
        assert_eq!(rep.processors, 1);
    }

    #[test]
    fn every_stream_executes() {
        let mut m = tiny(2);
        let base = m.memory_mut().alloc(16);
        m.run(&store_id_program(base), 8, |_, _| {});
        for id in 0..16 {
            assert_eq!(m.memory().peek(base + id), 100 + id as i64);
        }
    }

    #[test]
    fn init_closure_overrides_registers() {
        let mut m = tiny(1);
        let base = m.memory_mut().alloc(2);
        let mut b = ProgramBuilder::new();
        b.store(Reg(5), Reg(1), base as i64).halt();
        let prog = b.build();
        m.run(&prog, 2, |id, regs| regs[5] = (id * 7) as i64);
        assert_eq!(m.memory().peek(base), 0);
        assert_eq!(m.memory().peek(base + 1), 7);
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut m = tiny(1);
        let base = m.memory_mut().alloc(1);
        let mut b = ProgramBuilder::new();
        b.li(Reg(0), 42); // discarded
        b.store(Reg(0), Reg(0), base as i64);
        b.halt();
        let prog = b.build();
        m.run(&prog, 1, |_, regs| regs[0] = 9); // also discarded
        assert_eq!(m.memory().peek(base), 0);
    }

    /// Dynamic fetch-add loop: sum of claimed indices must equal the
    /// arithmetic series regardless of stream count.
    fn dynamic_sum_program(counter: usize, acc: usize, n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let (i, one, lim, t) = (Reg(2), Reg(3), Reg(4), Reg(5));
        b.li(one, 1).li(lim, n);
        let top = b.here();
        b.fetch_add_imm(i, counter as i64, one);
        let done = b.bge_fwd(i, lim);
        b.fetch_add_imm(t, acc as i64, i);
        b.jmp(top);
        b.bind(done);
        b.halt();
        b.build()
    }

    #[test]
    fn dynamic_loop_claims_each_iteration_once() {
        for streams in [1usize, 3, 8] {
            let mut m = tiny(1);
            let counter = m.memory_mut().alloc(1);
            let acc = m.memory_mut().alloc(1);
            m.run(&dynamic_sum_program(counter, acc, 500), streams, |_, _| {});
            assert_eq!(
                m.memory().peek(acc),
                (0..500).sum::<i64>(),
                "streams={streams}"
            );
        }
    }

    #[test]
    fn more_streams_hide_latency() {
        // With one stream the dependent fetch-add chain exposes the full
        // memory latency per iteration; with 8 streams the processor
        // overlaps them.
        let run = |streams: usize| {
            let mut m = tiny(1);
            let counter = m.memory_mut().alloc(1);
            let acc = m.memory_mut().alloc(1);
            m.run(&dynamic_sum_program(counter, acc, 400), streams, |_, _| {})
        };
        let r1 = run(1);
        let r8 = run(8);
        assert!(
            r1.cycles > 2 * r8.cycles,
            "1 stream {} vs 8 streams {}",
            r1.cycles,
            r8.cycles
        );
        assert!(r8.utilization > 2.0 * r1.utilization);
    }

    #[test]
    fn more_processors_cut_time() {
        let run = |p: usize| {
            let mut m = tiny(p);
            let counter = m.memory_mut().alloc(1);
            let acc = m.memory_mut().alloc(1);
            m.run(&dynamic_sum_program(counter, acc, 2000), 8, |_, _| {})
        };
        let r1 = run(1);
        let r4 = run(4);
        assert!(
            (r1.cycles as f64 / r4.cycles as f64) > 2.5,
            "p=1 {} vs p=4 {}",
            r1.cycles,
            r4.cycles
        );
    }

    #[test]
    fn utilization_bounded_by_one() {
        let mut m = tiny(2);
        let counter = m.memory_mut().alloc(1);
        let acc = m.memory_mut().alloc(1);
        let rep = m.run(&dynamic_sum_program(counter, acc, 1000), 8, |_, _| {});
        assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
        // 3-wide LIW: up to 3 operations per cycle per processor.
        assert!(rep.ipc() <= 3.0 * 2.0 + 1e-9);
    }

    #[test]
    fn feb_producer_consumer_across_streams() {
        // Stream 0 produces 1..=K into a cell; stream 1 consumes and sums.
        let mut m = tiny(1);
        let cell = m.memory_mut().alloc(1);
        let out = m.memory_mut().alloc(1);
        m.memory_mut().set_empty(cell);
        let k = 20i64;

        let mut b = ProgramBuilder::new();
        let (i, one, lim, v, sum) = (Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
        b.li(one, 1).li(lim, k);
        // dispatch on stream id
        let consumer = b.bne_fwd(Reg(1), Reg(0));
        // producer: for i in 1..=k writeef(cell, i)
        b.li(i, 1);
        let ptop = b.here();
        b.writeef(i, Reg(0), cell as i64);
        b.addi(i, i, 1);
        let pdone = b.bge_fwd(i, lim);
        b.jmp(ptop);
        b.bind(pdone);
        b.writeef(i, Reg(0), cell as i64); // send k as the last value
        b.halt();
        // consumer: sum k readfe's
        b.bind(consumer);
        b.li(sum, 0).li(i, 0);
        let ctop = b.here();
        b.readfe(v, Reg(0), cell as i64);
        b.add(sum, sum, v);
        b.addi(i, i, 1);
        let cdone = b.bge_fwd(i, lim);
        b.jmp(ctop);
        b.bind(cdone);
        b.store(sum, Reg(0), out as i64);
        b.halt();
        let prog = b.build();

        let rep = m.run(&prog, 2, |_, _| {});
        assert_eq!(m.memory().peek(out), (1..=k).sum::<i64>());
        assert!(rep.sync_retries > 0, "the handshake must actually block");
    }

    #[test]
    fn lookahead_window_limits_issue() {
        // A stream issuing back-to-back independent stores can only keep
        // `lookahead` in flight; with lookahead 2 and latency 10 the
        // store stream is throttled.
        let mut b = ProgramBuilder::new();
        for k in 0..16 {
            b.store(Reg(0), Reg(0), k);
        }
        b.halt();
        let prog = b.build();
        let mut m = tiny(1);
        m.memory_mut().alloc(16);
        let rep = m.run(&prog, 1, |_, _| {});
        // 16 stores, window 2, latency 10: every 2 stores wait ~10 cycles.
        assert!(rep.cycles >= 70, "window must throttle: {}", rep.cycles);
    }

    #[test]
    fn reports_accumulate_across_regions() {
        let mut m = tiny(1);
        let base = m.memory_mut().alloc(4);
        let p = store_id_program(base);
        m.run(&p, 1, |_, _| {});
        m.run(&p, 1, |_, _| {});
        assert_eq!(m.reports().len(), 2);
        assert_eq!(
            m.total_cycles(),
            m.reports()[0].cycles + m.reports()[1].cycles
        );
        assert!(m.total_seconds() > 0.0);
    }

    #[test]
    fn memory_deltas_are_per_region() {
        let mut m = tiny(1);
        let base = m.memory_mut().alloc(4);
        let p = store_id_program(base);
        let r1 = m.run(&p, 1, |_, _| {});
        let r2 = m.run(&p, 1, |_, _| {});
        assert_eq!(r1.mem.stores, 1);
        assert_eq!(
            r2.mem.stores, 1,
            "second region counts only its own traffic"
        );
    }

    #[test]
    #[should_panic(expected = "only")]
    fn too_many_streams_rejected() {
        let mut m = tiny(1);
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build();
        m.run(&p, 9999, |_, _| {});
    }

    #[test]
    fn op_mix_histogram_matches_execution() {
        use crate::isa::OpClass;
        let mut m = tiny(1);
        let base = m.memory_mut().alloc(4);
        let rep = m.run(&store_id_program(base), 2, |_, _| {});
        // Program: addi, add, store, halt -- per stream.
        assert_eq!(rep.ops(OpClass::Alu), 4);
        assert_eq!(rep.ops(OpClass::Store), 2);
        assert_eq!(rep.ops(OpClass::Halt), 2);
        assert_eq!(rep.ops(OpClass::Load), 0);
        let mix = rep.mix_summary();
        assert!(mix.contains("alu") && mix.contains("store"));
        assert_eq!(rep.op_mix.iter().sum::<u64>(), rep.issued);
    }

    #[test]
    fn hotspot_serializes_atomics_on_one_word() {
        // A single word drains one atomic per cycle machine-wide, so a
        // hotspot only hurts once several *processors* aggregate demand:
        // 8 procs x 8 streams x 32 fetch_adds on ONE word vs one word
        // per stream.
        let run = |spread: bool| {
            let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), 8, 1 << 12);
            let cells = m.memory_mut().alloc(64);
            let mut b = ProgramBuilder::new();
            let (i, lim, one, t, a) = (Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
            b.li(i, 0).li(lim, 32).li(one, 1);
            if spread {
                b.add(a, Reg(1), Reg(0)); // cells[stream_id]
            } else {
                b.li(a, 0); // everyone hits cells[0]
            }
            let top = b.here();
            b.fetch_add(t, a, cells as i64, one);
            b.addi(i, i, 1);
            b.blt(i, lim, top);
            b.halt();
            let prog = b.build();
            m.run(&prog, 8, |_, _| {})
        };
        let hot = run(false);
        let cold = run(true);
        // 2048 serialized atomics need at least ~2048 cycles; the spread
        // version is issue-bound far below that.
        assert!(hot.cycles >= 2048, "drain rate is 1/cycle: {}", hot.cycles);
        assert!(
            hot.cycles > 3 * cold.cycles,
            "hotspot {} should far exceed spread {}",
            hot.cycles,
            cold.cycles
        );
        assert!(
            hot.utilization < cold.utilization,
            "a hotspot starves issue slots"
        );
    }

    #[test]
    fn empty_program_halts_immediately() {
        let mut m = tiny(1);
        let p = ProgramBuilder::new().build();
        let rep = m.run(&p, 4, |_, _| {});
        assert_eq!(rep.issued, 0);
        assert_eq!(rep.cycles, 0);
    }

    #[test]
    fn with_engine_scopes_the_override() {
        // The ambient default is Trace unless the suite runs under an
        // ARCHGRAPH_MTA_ENGINE override (the CI engine matrix does); the
        // property under test is scoping, not the ambient value.
        let ambient = tiny(1).engine();
        with_engine(MtaEngine::SingleStep, || {
            assert_eq!(tiny(1).engine(), MtaEngine::SingleStep);
            with_engine(MtaEngine::Trace, || {
                assert_eq!(tiny(1).engine(), MtaEngine::Trace);
            });
            assert_eq!(tiny(1).engine(), MtaEngine::SingleStep);
        });
        assert_eq!(tiny(1).engine(), ambient);
    }

    /// Run `prog` under both engines and assert bit-identical reports
    /// and memory images; return the pair of engine stats.
    fn assert_engines_agree(
        prog: &Program,
        p: usize,
        streams: usize,
        setup: impl Fn(&mut MtaMachine),
    ) -> (EngineStats, EngineStats) {
        let run = |engine: MtaEngine| {
            let mut m = tiny(p);
            m.set_engine(engine);
            setup(&mut m);
            let rep = m.run(prog, streams, |_, _| {});
            (rep, m.memory().peek_slice(0, 64), m.engine_stats())
        };
        let (rt, mt, st) = run(MtaEngine::Trace);
        let (rs, ms, ss) = run(MtaEngine::SingleStep);
        assert_eq!(rt, rs, "reports must be engine-invariant");
        assert_eq!(mt, ms, "memory images must be engine-invariant");
        (st, ss)
    }

    #[test]
    fn engines_agree_on_dynamic_loop_kernel() {
        let mut m0 = tiny(2);
        let counter = m0.memory_mut().alloc(1);
        let acc = m0.memory_mut().alloc(1);
        let prog = dynamic_sum_program(counter, acc, 700);
        for (p, streams) in [(1usize, 1usize), (1, 8), (2, 5)] {
            assert_engines_agree(&prog, p, streams, |m| {
                m.memory_mut().alloc(2);
            });
        }
    }

    #[test]
    fn trace_engine_batches_where_the_oracle_steps() {
        // A long ALU body before each store gives the batcher room.
        let mut b = ProgramBuilder::new();
        let (x, y) = (Reg(2), Reg(3));
        b.li(x, 1);
        for _ in 0..6 {
            b.add(y, x, x).add(x, y, x);
        }
        b.store(x, Reg(0), 0).halt();
        let prog = b.build();
        // One stream: with several streams per processor at saturation the
        // preemption horizon is one third away (the peers' events), so the
        // batcher correctly stands down — low concurrency is its fast path.
        let (st, ss) = assert_engines_agree(&prog, 1, 1, |m| {
            m.memory_mut().alloc(1);
        });
        assert!(st.batches > 0, "trace engine must batch here: {st:?}");
        assert!(st.batched_instrs >= 2 * st.batches);
        assert_eq!(ss.batches, 0, "oracle never batches");
        assert_eq!(ss.batched_instrs, 0);
        assert!(
            st.events < ss.events,
            "batching must fuse visits: {} vs {}",
            st.events,
            ss.events
        );
    }

    #[test]
    fn trace_engine_exact_cycles_pinned() {
        // Straight-line: 8 ALU ops + store + halt on one stream. ALU ops
        // issue back-to-back (1 cycle each); the store drains before halt
        // retires the region. Pinning the exact count guards the
        // trace-vs-single-step equivalence against silent drift.
        let mut b = ProgramBuilder::new();
        let x = Reg(2);
        b.li(x, 0);
        for k in 0..7 {
            b.addi(x, x, k);
        }
        b.store(x, Reg(0), 0).halt();
        let prog = b.build();
        let cycles: Vec<u64> = [MtaEngine::Trace, MtaEngine::SingleStep]
            .into_iter()
            .map(|e| {
                let mut m = tiny(1);
                m.set_engine(e);
                m.memory_mut().alloc(1);
                m.run(&prog, 1, |_, _| {}).cycles
            })
            .collect();
        assert_eq!(cycles[0], cycles[1]);
        let latency = MtaParams::tiny_for_tests().mem_latency;
        // Time is accounted in thirds of a cycle: the 8 ALU ops fill
        // thirds 0..8, the store issues at third 8, and the region drains
        // when it lands, `3 × mem_latency` thirds later.
        assert_eq!(cycles[0], (8 + 3 * latency).div_ceil(3));
    }

    #[test]
    fn env_override_spelling_variants() {
        // Not an env test (the cache is process-global); just pin that
        // set_engine round-trips both variants used by the env parser.
        let mut m = tiny(1);
        m.set_engine(MtaEngine::SingleStep);
        assert_eq!(m.engine(), MtaEngine::SingleStep);
        m.set_engine(MtaEngine::Trace);
        assert_eq!(m.engine(), MtaEngine::Trace);
    }
}
