//! The flat shared memory with full/empty-bit synchronization and
//! `int_fetch_add`.
//!
//! Addresses are in *words* (the MTA is word-oriented; the paper's codes
//! index `int` arrays). A bump allocator carves arrays out of the space.
//! Logical-to-physical hashing (§2.2) exists on the real machine to avoid
//! stride hotspots; since the simulator models a uniform-latency memory
//! with no banks, hashing has no observable effect and is omitted — which
//! is precisely the paper's point that layout is irrelevant on the MTA.

use crate::fault::FaultPlan;
use crate::word::Word;

// --- word-level operation cores ---
//
// The counting semantics of each memory operation, factored over a single
// [`Word`] plus a counter block so two callers can share them exactly:
// [`Memory`]'s simulated-operation methods below, and the partitioned
// engine's sharded window merge, which applies operations to
// address-disjoint word sets in parallel, each shard carrying its own
// [`MemCounters`] delta (summed into the memory's counters afterwards).

/// Ordinary load core (see [`Memory::load`]).
#[inline]
pub(crate) fn word_load(w: &mut Word, c: &mut MemCounters) -> i64 {
    c.loads += 1;
    w.value
}

/// Ordinary store core (see [`Memory::store`]).
#[inline]
pub(crate) fn word_store(w: &mut Word, c: &mut MemCounters, value: i64) {
    c.stores += 1;
    w.value = value;
}

/// `readfe` core (see [`Memory::readfe`]); `stuck` is the address's
/// stuck-tag fault, if any.
#[inline]
pub(crate) fn word_readfe(w: &mut Word, c: &mut MemCounters, stuck: Option<bool>) -> Option<i64> {
    if stuck.unwrap_or(w.full) {
        if stuck.is_none() {
            w.full = false;
        }
        c.sync_ops += 1;
        Some(w.value)
    } else {
        c.sync_retries += 1;
        None
    }
}

/// `writeef` core (see [`Memory::writeef`]).
#[inline]
pub(crate) fn word_writeef(
    w: &mut Word,
    c: &mut MemCounters,
    stuck: Option<bool>,
    value: i64,
) -> bool {
    if !stuck.unwrap_or(w.full) {
        if stuck.is_none() {
            w.full = true;
        }
        w.value = value;
        c.sync_ops += 1;
        true
    } else {
        c.sync_retries += 1;
        false
    }
}

/// `readff` core (see [`Memory::readff`]).
#[inline]
pub(crate) fn word_readff(w: &mut Word, c: &mut MemCounters, stuck: Option<bool>) -> Option<i64> {
    if stuck.unwrap_or(w.full) {
        c.sync_ops += 1;
        Some(w.value)
    } else {
        c.sync_retries += 1;
        None
    }
}

/// `int_fetch_add` core (see [`Memory::int_fetch_add`]).
#[inline]
pub(crate) fn word_fetch_add(w: &mut Word, c: &mut MemCounters, delta: i64) -> i64 {
    c.fetch_adds += 1;
    let old = w.value;
    w.value = old.wrapping_add(delta);
    old
}

/// Raw word-granular view of a [`Memory`], used by the partitioned engine
/// to apply its window logs from several threads at once (each thread
/// owning a disjoint, hash-sharded address subset) and to let its workers
/// *read* full/empty tags between merges.
///
/// # Safety protocol (upheld by `partition::run_region`)
///
/// * Mutation happens only during the merge's apply phase, and only
///   through addresses the applying thread's shard owns — shards
///   partition the address space, so no word is ever reachable from two
///   threads in the same phase.
/// * Workers read tags only while the coordinator is quiescent (between
///   barrier crossings of the window protocol); every apply phase is
///   separated from every read phase by a barrier, whose acquire/release
///   pair publishes the writes.
/// * The owning [`Memory`] is not accessed through its own methods while
///   the view is in use (counters are accumulated per shard and folded
///   back once the region's thread scope ends).
pub(crate) struct MemWords {
    ptr: *mut Word,
    len: usize,
}

unsafe impl Send for MemWords {}
unsafe impl Sync for MemWords {}

impl MemWords {
    /// The word at `addr`. Panics on out-of-range addresses exactly like
    /// [`Memory`]'s own indexing, so a runaway program fails the same way
    /// on every engine.
    ///
    /// # Safety
    /// Caller must hold exclusive access to `addr` per the view's
    /// sharding protocol (see the type docs).
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub(crate) unsafe fn word(&self, addr: usize) -> &mut Word {
        assert!(addr < self.len, "address {addr} out of simulated memory");
        &mut *self.ptr.add(addr)
    }

    /// The raw full/empty bit at `addr` (no stuck-tag folding).
    ///
    /// # Safety
    /// Caller must be in a quiescent phase of the view's protocol (no
    /// concurrent apply phase may be mutating words).
    #[inline]
    pub(crate) unsafe fn full(&self, addr: usize) -> bool {
        assert!(addr < self.len, "address {addr} out of simulated memory");
        (*self.ptr.add(addr)).full
    }
}

/// Counters of memory traffic by operation class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Ordinary loads.
    pub loads: u64,
    /// Ordinary stores.
    pub stores: u64,
    /// Successful synchronous operations (readfe/writeef/readff).
    pub sync_ops: u64,
    /// Synchronous operations that found the wrong tag state and must
    /// retry.
    pub sync_retries: u64,
    /// `int_fetch_add` operations.
    pub fetch_adds: u64,
}

impl MemCounters {
    /// Total word-traffic (each op moves one word).
    pub fn total_ops(&self) -> u64 {
        self.loads + self.stores + self.sync_ops + self.fetch_adds
    }
}

/// The shared memory of a simulated MTA system.
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<Word>,
    next_free: usize,
    /// Traffic counters.
    pub counters: MemCounters,
    /// Active fault-injection plan, if any. Lives below the engine layer
    /// so that stuck full/empty bits perturb every engine identically; the
    /// engines consult the pure per-address latency/wakeup helpers.
    fault: Option<FaultPlan>,
}

impl Memory {
    /// A memory of `capacity` words, all full-of-zero. Picks up the
    /// configured fault plan: a scoped `with_fault_plan` override if one
    /// is active on this thread, else the ambient `ARCHGRAPH_FAULTS`.
    pub fn new(capacity: usize) -> Self {
        Memory {
            words: vec![Word::default(); capacity],
            next_free: 0,
            counters: MemCounters::default(),
            fault: FaultPlan::configured(),
        }
    }

    /// Install (or clear) a fault plan, overriding the ambient env plan.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Extra completion latency (thirds) a memory op on `addr` suffers
    /// under the active fault plan. Zero without a plan.
    #[inline]
    pub fn fault_extra_latency(&self, addr: usize) -> u64 {
        match &self.fault {
            None => 0,
            Some(p) => p.extra_latency(addr),
        }
    }

    /// Total extra completion latency (thirds) for a memory op by
    /// processor `proc` on `addr`, issued at `issue_at` with base
    /// latency `latency`, under the active fault plan: the address-keyed
    /// spike plus the structural degraded-link and brownout axes. Zero
    /// without a plan. Every engine computes completion times through
    /// this one helper with identical inputs — that is the whole
    /// engine-invariance argument (DESIGN.md §8).
    #[inline]
    pub fn fault_mem_extra(&self, proc: usize, addr: usize, issue_at: u64, latency: u64) -> u64 {
        match &self.fault {
            None => 0,
            Some(p) => p.extra_mem_latency(proc, addr, issue_at, latency),
        }
    }

    /// The first time ≥ `t` at which processor `proc` may issue under the
    /// active fault plan's stall windows; `t` itself without a plan.
    #[inline]
    pub fn fault_stall_adjust(&self, proc: usize, t: u64) -> u64 {
        match &self.fault {
            None => t,
            Some(p) => p.stall_adjust(proc, t),
        }
    }

    /// The start of the first stall window strictly after `t` for `proc`
    /// (`u64::MAX` when nothing stalls): the batching engines' private
    /// runs are capped here.
    #[inline]
    pub fn fault_next_stall(&self, proc: usize, t: u64) -> u64 {
        match &self.fault {
            None => u64::MAX,
            Some(p) => p.next_stall_start(proc, t),
        }
    }

    /// Extra retry delay (thirds) a failed sync op on `addr` suffers
    /// under the active fault plan. Zero without a plan.
    #[inline]
    pub fn fault_wake_delay(&self, addr: usize) -> u64 {
        match &self.fault {
            None => 0,
            Some(p) => p.extra_wake_delay(addr),
        }
    }

    /// The tag state forced on `addr` by a stuck-bit fault, if any.
    #[inline]
    fn stuck_tag(&self, addr: usize) -> Option<bool> {
        match &self.fault {
            None => None,
            Some(p) => p.stuck_tag(addr),
        }
    }

    /// The full/empty state a synchronizing op would observe at `addr`,
    /// including stuck-bit faults. Host-side (no counters) — this is what
    /// the deadlock detector probes.
    #[inline]
    pub fn effective_full(&self, addr: usize) -> bool {
        self.stuck_tag(addr).unwrap_or(self.words[addr].full)
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Bump-allocate `len` words; returns the base word address.
    /// Panics when memory is exhausted.
    pub fn alloc(&mut self, len: usize) -> usize {
        let base = self.next_free;
        assert!(
            base + len <= self.words.len(),
            "simulated memory exhausted: need {len} words at {base}, capacity {}",
            self.words.len()
        );
        self.next_free += len;
        base
    }

    /// Copy a host slice into simulated memory at `base` (words full).
    pub fn load_slice(&mut self, base: usize, values: &[i64]) {
        for (i, &v) in values.iter().enumerate() {
            self.words[base + i] = Word::full(v);
        }
    }

    /// Allocate and initialize from a host slice in one step.
    pub fn alloc_init(&mut self, values: &[i64]) -> usize {
        let base = self.alloc(values.len());
        self.load_slice(base, values);
        base
    }

    /// Allocate `len` words all set to `value`.
    pub fn alloc_fill(&mut self, len: usize, value: i64) -> usize {
        let base = self.alloc(len);
        for w in &mut self.words[base..base + len] {
            *w = Word::full(value);
        }
        base
    }

    /// Read a word's value without simulation side effects (host-side
    /// inspection of results).
    pub fn peek(&self, addr: usize) -> i64 {
        self.words[addr].value
    }

    /// Copy `len` words out to the host starting at `base`.
    pub fn peek_slice(&self, base: usize, len: usize) -> Vec<i64> {
        self.words[base..base + len]
            .iter()
            .map(|w| w.value)
            .collect()
    }

    /// Host-side write without side effects.
    pub fn poke(&mut self, addr: usize, value: i64) {
        self.words[addr].value = value;
    }

    /// Host-side tag inspection.
    pub fn is_full(&self, addr: usize) -> bool {
        self.words[addr].full
    }

    /// Host-side: mark a word empty (e.g. to initialize a sync variable).
    pub fn set_empty(&mut self, addr: usize) {
        self.words[addr].full = false;
    }

    // --- simulated operations (update counters) ---

    /// Ordinary load: ignores the full/empty bit.
    pub fn load(&mut self, addr: usize) -> i64 {
        word_load(&mut self.words[addr], &mut self.counters)
    }

    /// Ordinary store: ignores and does not change the full/empty bit.
    pub fn store(&mut self, addr: usize, value: i64) {
        word_store(&mut self.words[addr], &mut self.counters, value);
    }

    /// Synchronous read-and-empty: succeeds only on a full word, leaving
    /// it empty. `None` means the issuing stream must retry. A stuck tag
    /// fault pins the observed state (and the bit cannot be cleared).
    pub fn readfe(&mut self, addr: usize) -> Option<i64> {
        let stuck = self.stuck_tag(addr);
        word_readfe(&mut self.words[addr], &mut self.counters, stuck)
    }

    /// Synchronous write-and-fill: succeeds only on an empty word, leaving
    /// it full. `false` means retry. A stuck-empty fault lets the write
    /// through but the bit stays empty; a stuck-full fault blocks forever.
    pub fn writeef(&mut self, addr: usize, value: i64) -> bool {
        let stuck = self.stuck_tag(addr);
        word_writeef(&mut self.words[addr], &mut self.counters, stuck, value)
    }

    /// Synchronous read-when-full (does not empty). `None` means retry.
    pub fn readff(&mut self, addr: usize) -> Option<i64> {
        let stuck = self.stuck_tag(addr);
        word_readff(&mut self.words[addr], &mut self.counters, stuck)
    }

    /// Atomic fetch-and-add at memory; returns the *old* value. One cycle
    /// on the real machine; the engine charges it like a memory op.
    pub fn int_fetch_add(&mut self, addr: usize, delta: i64) -> i64 {
        word_fetch_add(&mut self.words[addr], &mut self.counters, delta)
    }

    /// Raw word view for the partitioned engine's sharded merge. See
    /// [`MemWords`] for the safety protocol.
    pub(crate) fn words_view(&mut self) -> MemWords {
        MemWords {
            ptr: self.words.as_mut_ptr(),
            len: self.words.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_disjoint() {
        let mut m = Memory::new(100);
        let a = m.alloc(10);
        let b = m.alloc(20);
        assert_eq!(a, 0);
        assert_eq!(b, 10);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_overflow_panics() {
        let mut m = Memory::new(8);
        m.alloc(9);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = Memory::new(4);
        m.store(2, 42);
        assert_eq!(m.load(2), 42);
        assert_eq!(m.counters.loads, 1);
        assert_eq!(m.counters.stores, 1);
    }

    #[test]
    fn init_helpers() {
        let mut m = Memory::new(16);
        let a = m.alloc_init(&[1, 2, 3]);
        assert_eq!(m.peek_slice(a, 3), vec![1, 2, 3]);
        let b = m.alloc_fill(4, -1);
        assert_eq!(m.peek_slice(b, 4), vec![-1; 4]);
    }

    #[test]
    fn readfe_empties_then_blocks() {
        let mut m = Memory::new(2);
        m.store(0, 5);
        assert_eq!(m.readfe(0), Some(5));
        assert!(!m.is_full(0));
        assert_eq!(m.readfe(0), None, "now empty: retry");
        assert_eq!(m.counters.sync_retries, 1);
    }

    #[test]
    fn writeef_fills_then_blocks() {
        let mut m = Memory::new(1);
        m.set_empty(0);
        assert!(m.writeef(0, 9));
        assert!(m.is_full(0));
        assert!(!m.writeef(0, 10), "full: retry");
        assert_eq!(m.peek(0), 9);
    }

    #[test]
    fn readff_waits_for_full_without_emptying() {
        let mut m = Memory::new(1);
        m.set_empty(0);
        assert_eq!(m.readff(0), None);
        assert!(m.writeef(0, 3));
        assert_eq!(m.readff(0), Some(3));
        assert!(m.is_full(0), "readff leaves the word full");
    }

    #[test]
    fn producer_consumer_handshake() {
        // The classic FEB pattern: consumer readfe's a slot the producer
        // writeef's, alternating ownership.
        let mut m = Memory::new(1);
        m.set_empty(0);
        assert_eq!(m.readfe(0), None, "nothing produced yet");
        assert!(m.writeef(0, 1));
        assert_eq!(m.readfe(0), Some(1));
        assert!(m.writeef(0, 2));
        assert_eq!(m.readfe(0), Some(2));
        assert_eq!(m.counters.sync_ops, 4);
    }

    #[test]
    fn fetch_add_returns_old_and_accumulates() {
        let mut m = Memory::new(1);
        assert_eq!(m.int_fetch_add(0, 1), 0);
        assert_eq!(m.int_fetch_add(0, 1), 1);
        assert_eq!(m.int_fetch_add(0, 5), 2);
        assert_eq!(m.peek(0), 7);
        assert_eq!(m.counters.fetch_adds, 3);
    }

    #[test]
    fn fetch_add_wraps_safely() {
        let mut m = Memory::new(1);
        m.poke(0, i64::MAX);
        assert_eq!(m.int_fetch_add(0, 1), i64::MAX);
        assert_eq!(m.peek(0), i64::MIN);
    }

    #[test]
    fn stuck_bits_pin_the_observed_tag() {
        // rate=0 affects every address.
        let plan = FaultPlan::parse("stuck-empty,rate=0:1").unwrap();
        let mut m = Memory::new(4);
        m.set_fault_plan(Some(plan));
        assert_eq!(m.readfe(0), None, "stuck empty: consumers starve");
        assert!(!m.effective_full(0));
        assert!(m.writeef(0, 7), "stuck empty: writes pass through");
        assert!(!m.effective_full(0), "but the observed tag never fills");
        assert_eq!(m.readfe(0), None, "so a consumer still starves");
        assert_eq!(m.peek(0), 7);

        let plan = FaultPlan::parse("stuck-full,rate=0:1").unwrap();
        let mut m = Memory::new(4);
        m.set_fault_plan(Some(plan));
        m.poke(0, 9);
        assert_eq!(m.readfe(0), Some(9));
        assert!(m.is_full(0), "stuck full: readfe cannot empty the word");
        assert_eq!(m.readfe(0), Some(9), "so it keeps succeeding");
        assert!(!m.writeef(0, 1), "stuck full: producers starve");
        assert!(m.effective_full(0));
    }

    #[test]
    fn counters_total() {
        let mut m = Memory::new(4);
        m.load(0);
        m.store(1, 1);
        m.int_fetch_add(2, 1);
        m.store(3, 1);
        m.readfe(3);
        assert_eq!(m.counters.total_ops(), 5);
    }
}
