//! Canned lowerings for the parallel-loop shapes the paper's MTA codes use.
//!
//! The paper's list-ranking code distributes outer-loop iterations to
//! streams **dynamically**: "each stream gets one walk at a time; when it
//! finishes its current walk, it increments the loop counter and executes
//! the next walk. A machine instruction, `int_fetch_add`, is used to
//! increment the shared loop counter" (§3). [`dynamic_loop`] emits exactly
//! that claim loop; [`dynamic_loop_grained`] claims fixed-size chunks
//! (what `#pragma mta assert parallel` over a flat loop compiles to); and
//! [`block_loop`] is the static alternative used to demonstrate the load-
//! imbalance ablation.
//!
//! All helpers emit straight-line code into a [`ProgramBuilder`]; control
//! falls through after the loop so callers can sequence further work or
//! `halt`.
//!
//! For the trace-batched engine (see [`crate::isa::TraceTable`]) these
//! shapes set the run boundaries: each `int_fetch_add` claim is a trace
//! terminator, so a dynamic loop's body plus its back-edge branch is the
//! private run the engine can issue in one scheduler visit when the
//! registers are ready and no other stream's event preempts it.

use crate::isa::{ProgramBuilder, Reg, STREAM_ID};

/// Registers a loop helper may clobber, besides the caller-visible index.
#[derive(Debug, Clone, Copy)]
pub struct LoopRegs {
    /// Loop index register, set for each iteration before `body` runs.
    pub idx: Reg,
    /// Scratch register (holds constants / chunk end).
    pub s1: Reg,
    /// Second scratch register.
    pub s2: Reg,
    /// Third scratch register.
    pub s3: Reg,
}

impl LoopRegs {
    /// A conventional allocation using r2–r5, leaving r6+ for the body.
    pub fn standard() -> Self {
        LoopRegs {
            idx: Reg(2),
            s1: Reg(3),
            s2: Reg(4),
            s3: Reg(5),
        }
    }

    fn assert_distinct(&self) {
        let rs = [self.idx.0, self.s1.0, self.s2.0, self.s3.0];
        for i in 0..4 {
            assert_ne!(rs[i], 0, "loop registers must not be r0");
            for j in (i + 1)..4 {
                assert_ne!(rs[i], rs[j], "loop registers must be distinct");
            }
        }
    }
}

/// Emit a one-index-at-a-time dynamic loop over `0..n`, scheduled by
/// `int_fetch_add` on the shared counter at `counter_addr` (which must
/// start at 0). `body` is emitted once; at run time each claimed index is
/// in `regs.idx` when it executes.
pub fn dynamic_loop(
    b: &mut ProgramBuilder,
    counter_addr: usize,
    n: i64,
    regs: LoopRegs,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    regs.assert_distinct();
    let (idx, one, lim) = (regs.idx, regs.s1, regs.s2);
    b.li(one, 1).li(lim, n);
    let top = b.here();
    b.fetch_add_imm(idx, counter_addr as i64, one);
    let done = b.bge_fwd(idx, lim);
    body(b);
    b.jmp(top);
    b.bind(done);
}

/// Emit a chunk-claiming dynamic loop over `0..n` with chunks of `grain`
/// indices: one `int_fetch_add` claims `grain` consecutive iterations,
/// amortizing the claim latency (the shape a flat data-parallel loop
/// compiles to). `body` sees each index in `regs.idx`.
pub fn dynamic_loop_grained(
    b: &mut ProgramBuilder,
    counter_addr: usize,
    n: i64,
    grain: i64,
    regs: LoopRegs,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    assert!(grain >= 1, "grain must be positive");
    regs.assert_distinct();
    let (idx, g, lim, end) = (regs.idx, regs.s1, regs.s2, regs.s3);
    b.li(g, grain).li(lim, n);
    let top = b.here();
    b.fetch_add_imm(idx, counter_addr as i64, g);
    let done = b.bge_fwd(idx, lim);
    // end = min(idx + grain, n)
    b.add(end, idx, g);
    let no_clamp = b.blt_fwd(end, lim);
    b.mov(end, lim);
    b.bind(no_clamp);
    let inner = b.here();
    body(b);
    b.addi(idx, idx, 1);
    b.blt(idx, end, inner);
    b.jmp(top);
    b.bind(done);
}

/// [`dynamic_loop_grained`] with the loop limit read from the memory word
/// at `limit_addr` when the program starts instead of baked in as an
/// immediate. Worklist kernels (speculative coloring rounds, BFS frontier
/// levels) need this: the same compiled program runs every round, with
/// the host poking the current worklist size between regions.
pub fn dynamic_loop_grained_mem(
    b: &mut ProgramBuilder,
    counter_addr: usize,
    limit_addr: usize,
    grain: i64,
    regs: LoopRegs,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    assert!(grain >= 1, "grain must be positive");
    regs.assert_distinct();
    let (idx, g, lim, end) = (regs.idx, regs.s1, regs.s2, regs.s3);
    b.li(g, grain).load_abs(lim, limit_addr);
    let top = b.here();
    b.fetch_add_imm(idx, counter_addr as i64, g);
    let done = b.bge_fwd(idx, lim);
    // end = min(idx + grain, limit)
    b.add(end, idx, g);
    let no_clamp = b.blt_fwd(end, lim);
    b.mov(end, lim);
    b.bind(no_clamp);
    let inner = b.here();
    body(b);
    b.addi(idx, idx, 1);
    b.blt(idx, end, inner);
    b.jmp(top);
    b.bind(done);
}

/// Emit a statically block-scheduled loop: stream `id` covers
/// `[id * chunk, min((id+1) * chunk, n))`. With skewed per-iteration work
/// this load-imbalances — the ablation contrast to [`dynamic_loop`].
pub fn block_loop(
    b: &mut ProgramBuilder,
    n: i64,
    chunk: i64,
    regs: LoopRegs,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    assert!(chunk >= 1, "chunk must be positive");
    regs.assert_distinct();
    let (idx, c, lim, end) = (regs.idx, regs.s1, regs.s2, regs.s3);
    b.li(c, chunk).li(lim, n);
    b.mul(idx, STREAM_ID, c);
    b.add(end, idx, c);
    let no_clamp = b.blt_fwd(end, lim);
    b.mov(end, lim);
    b.bind(no_clamp);
    let skip = b.bge_fwd(idx, end);
    let top = b.here();
    body(b);
    b.addi(idx, idx, 1);
    b.blt(idx, end, top);
    b.bind(skip);
}

/// Host-side helper: the chunk size that spreads `n` iterations over
/// `streams` streams in one block each.
pub fn block_chunk(n: usize, streams: usize) -> i64 {
    n.div_ceil(streams.max(1)).max(1) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MtaMachine;
    use archgraph_core::MtaParams;

    fn tiny(p: usize) -> MtaMachine {
        MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), p, 1 << 16)
    }

    /// Each loop body marks mem[base + idx] += 1; afterwards every cell
    /// must be exactly 1 (each index executed exactly once).
    fn check_exactly_once(kind: &str, run: impl FnOnce(&mut MtaMachine, usize, i64)) {
        let n = 137usize;
        let mut m = tiny(2);
        let base = m.memory_mut().alloc(n);
        run(&mut m, base, n as i64);
        for i in 0..n {
            assert_eq!(m.memory().peek(base + i), 1, "{kind}: index {i}");
        }
    }

    #[test]
    fn dynamic_loop_covers_exactly_once() {
        check_exactly_once("dynamic", |m, base, n| {
            let counter = m.memory_mut().alloc(1);
            let mut b = ProgramBuilder::new();
            let regs = LoopRegs::standard();
            dynamic_loop(&mut b, counter, n, regs, |b| {
                // mem[base + idx] += 1 via fetch_add
                b.fetch_add(Reg(6), regs.idx, base as i64, regs.s1);
            });
            b.halt();
            let prog = b.build();
            m.run(&prog, 8, |_, _| {});
        });
    }

    #[test]
    fn grained_loop_covers_exactly_once() {
        for grain in [1i64, 3, 10, 1000] {
            check_exactly_once("grained", |m, base, n| {
                let counter = m.memory_mut().alloc(1);
                let mut b = ProgramBuilder::new();
                let regs = LoopRegs::standard();
                b.li(Reg(7), 1);
                dynamic_loop_grained(&mut b, counter, n, grain, regs, |b| {
                    b.fetch_add(Reg(6), regs.idx, base as i64, Reg(7));
                });
                b.halt();
                let prog = b.build();
                m.run(&prog, 8, |_, _| {});
            });
        }
    }

    #[test]
    fn grained_mem_loop_covers_exactly_once_per_poked_limit() {
        // The same program, run twice with different limits poked into the
        // limit word — the worklist-round usage pattern.
        let n = 91usize;
        let mut m = tiny(2);
        let base = m.memory_mut().alloc(n);
        let counter = m.memory_mut().alloc(1);
        let limit = m.memory_mut().alloc(1);
        let mut b = ProgramBuilder::new();
        let regs = LoopRegs::standard();
        b.li(Reg(7), 1);
        dynamic_loop_grained_mem(&mut b, counter, limit, 5, regs, |b| {
            b.fetch_add(Reg(6), regs.idx, base as i64, Reg(7));
        });
        b.halt();
        let prog = b.build();
        for lim in [n as i64, 17] {
            m.memory_mut().poke(counter, 0);
            m.memory_mut().poke(limit, lim);
            m.run(&prog, 8, |_, _| {});
        }
        for i in 0..n {
            let expect = if i < 17 { 2 } else { 1 };
            assert_eq!(m.memory().peek(base + i), expect, "index {i}");
        }
    }

    #[test]
    fn grained_mem_matches_immediate_limit_cycles() {
        // With the same limit, the memory-limit form does one extra
        // load_abs per stream but claims identically; coverage and claim
        // order must match the immediate form.
        let n = 64usize;
        let run = |mem_limit: bool| {
            let mut m = tiny(1);
            let base = m.memory_mut().alloc(n);
            let counter = m.memory_mut().alloc(1);
            let limit = m.memory_mut().alloc(1);
            m.memory_mut().poke(limit, n as i64);
            let mut b = ProgramBuilder::new();
            let regs = LoopRegs::standard();
            b.li(Reg(7), 1);
            if mem_limit {
                dynamic_loop_grained_mem(&mut b, counter, limit, 4, regs, |b| {
                    b.fetch_add(Reg(6), regs.idx, base as i64, Reg(7));
                });
            } else {
                dynamic_loop_grained(&mut b, counter, n as i64, 4, regs, |b| {
                    b.fetch_add(Reg(6), regs.idx, base as i64, Reg(7));
                });
            }
            b.halt();
            let prog = b.build();
            m.run(&prog, 8, |_, _| {});
            (0..n)
                .map(|i| m.memory().peek(base + i))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
        assert!(run(true).iter().all(|&v| v == 1));
    }

    #[test]
    fn block_loop_covers_exactly_once() {
        check_exactly_once("block", |m, base, n| {
            let streams = 16usize; // 2 procs x 8
            let chunk = block_chunk(n as usize, streams);
            let mut b = ProgramBuilder::new();
            let regs = LoopRegs::standard();
            b.li(Reg(7), 1);
            block_loop(&mut b, n, chunk, regs, |b| {
                b.fetch_add(Reg(6), regs.idx, base as i64, Reg(7));
            });
            b.halt();
            let prog = b.build();
            m.run(&prog, 8, |_, _| {});
        });
    }

    #[test]
    fn block_chunk_math() {
        assert_eq!(block_chunk(100, 10), 10);
        assert_eq!(block_chunk(101, 10), 11);
        assert_eq!(block_chunk(5, 10), 1);
        assert_eq!(block_chunk(0, 10), 1);
        assert_eq!(block_chunk(7, 0), 7);
    }

    #[test]
    fn grained_loop_is_faster_than_unit_claims() {
        // Claim latency amortization: with a tiny body, grain 16 beats
        // grain 1 because each claim's round trip covers 16 iterations.
        let run = |grain: i64| {
            let n = 512usize;
            let mut m = tiny(1);
            let base = m.memory_mut().alloc(n);
            let counter = m.memory_mut().alloc(1);
            let mut b = ProgramBuilder::new();
            let regs = LoopRegs::standard();
            b.li(Reg(7), 1);
            dynamic_loop_grained(&mut b, counter, n as i64, grain, regs, |b| {
                b.fetch_add(Reg(6), regs.idx, base as i64, Reg(7));
            });
            b.halt();
            let prog = b.build();
            m.run(&prog, 4, |_, _| {}).cycles
        };
        let c1 = run(1);
        let c16 = run(16);
        assert!(c16 < c1, "grain 16 ({c16}) should beat grain 1 ({c1})");
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_aliased_registers() {
        let mut b = ProgramBuilder::new();
        let regs = LoopRegs {
            idx: Reg(2),
            s1: Reg(2),
            s2: Reg(3),
            s3: Reg(4),
        };
        dynamic_loop(&mut b, 0, 10, regs, |_| {});
    }

    #[test]
    fn dynamic_beats_block_on_skewed_work() {
        // Skewed workload in a latency-dominated regime: iterations in the
        // first half perform a long *dependent-load chain* (serialized at
        // full memory latency), the rest a single load. Block scheduling
        // hands the whole heavy half to the low-numbered streams; dynamic
        // scheduling spreads it over all of them (§3's load-balance
        // argument for int_fetch_add loop scheduling).
        let n = 256usize;
        let streams = 8usize;
        let params = MtaParams {
            mem_latency: 100,
            ..MtaParams::tiny_for_tests()
        };
        let build = |dynamic: bool, counter: usize, data: usize| {
            let mut b = ProgramBuilder::new();
            let regs = LoopRegs::standard();
            let body = |b: &mut ProgramBuilder| {
                let chain = Reg(8);
                let k = Reg(9);
                let half = Reg(10);
                let len = Reg(12);
                b.li(half, (n / 2) as i64);
                b.li(len, 1);
                let light = b.bge_fwd(regs.idx, half);
                b.li(len, 8);
                b.bind(light);
                // `len` dependent loads: data holds zeros, so each load
                // lands on data[0] but depends on the previous result.
                b.li(k, 0);
                b.mov(chain, Reg(0));
                let top = b.here();
                b.load(chain, chain, data as i64);
                b.addi(k, k, 1);
                b.blt(k, len, top);
            };
            if dynamic {
                dynamic_loop(&mut b, counter, n as i64, regs, body);
            } else {
                block_loop(&mut b, n as i64, block_chunk(n, streams), regs, body);
            }
            b.halt();
            b.build()
        };
        let run = |dynamic: bool| {
            let mut m = MtaMachine::with_memory_words(params.clone(), 1, 1 << 16);
            let data = m.memory_mut().alloc(n + 64);
            let counter = m.memory_mut().alloc(1);
            let prog = build(dynamic, counter, data);
            m.run(&prog, streams, |_, _| {}).cycles
        };
        let dyn_cycles = run(true);
        let blk_cycles = run(false);
        assert!(
            blk_cycles as f64 > 1.3 * dyn_cycles as f64,
            "block {blk_cycles} should clearly exceed dynamic {dyn_cycles}"
        );
    }

    #[test]
    fn dynamic_loop_trace_shape() {
        // The claim loop's traces: the fetch_add terminates the header,
        // and the body + back-edge jmp form a run with a control tail —
        // the unit the batched engine issues per scheduler visit.
        use crate::isa::TraceEnd;
        let mut b = ProgramBuilder::new();
        let regs = LoopRegs::standard();
        dynamic_loop(&mut b, 0, 100, regs, |b| {
            b.add(Reg(6), regs.idx, regs.idx);
            b.addi(Reg(6), Reg(6), 1);
        });
        b.halt();
        let prog = b.build();
        let s = prog.trace_summary();
        assert_eq!(s.terminators[TraceEnd::Atomic.index()], 1);
        assert!(s.terminators[TraceEnd::Branch.index()] >= 2); // bge + jmp
        assert_eq!(s.terminators[TraceEnd::Halt.index()], 1);
        // The body run (add; addi; jmp) is private: length 3 with a tail.
        let t = prog.traces();
        let body_pc = 4; // li; li; faa; bge; <body>
        assert_eq!(t.run_len(body_pc), 3);
        assert!(t.has_tail(body_pc));
    }
}
