//! The partitioned time-wheel engine ([`crate::machine::MtaEngine::Partitioned`]):
//! deterministic intra-cell parallelism for the MTA simulator.
//!
//! # Scheme
//!
//! Streams are sharded across `W` worker partitions by **whole
//! processors** (contiguous processor ranges, so stream ids and processor
//! clocks split without overlap). Each partition owns a private
//! [`TimeWheel`] and runs the familiar issue loop inside **bounded time
//! windows** `[T, W_e)` with `W_e = T + Δ` and `Δ = latency − 1` thirds.
//! Shared-memory operations (`load` / `store` / `int_fetch_add`) are not
//! applied in-window: the worker logs them and the main thread applies the
//! whole window's log **serially at the barrier**, merged across
//! partitions by the same ascending `(time, stream_id)` key the single
//! wheel pops in.
//!
//! # Determinism argument (DESIGN.md has the long form)
//!
//! * **Merge order = single-wheel pop order.** The single-step engine
//!   applies a memory operation's side effects at its pop, and an issuing
//!   pop has `e == t`, so the global side-effect order is exactly
//!   ascending `(t, id)`. Each partition's log is appended in local pop
//!   order (ascending `(t, id)`), partitions cover disjoint id ranges, and
//!   windows cover disjoint time ranges, so the k-way merge by `(t, id)`
//!   reproduces the global order bit-for-bit — same memory image, same
//!   hotspot (`WordFree`) serialization, same completion times.
//! * **Readiness implies finality.** Any value produced by an in-window
//!   memory operation completes at `issue_at + latency ≥ T + latency =
//!   W_e + 1`, strictly beyond the window. A register whose ready time is
//!   `≤ W_e` therefore already holds its final value; a visit whose source
//!   max is `> W_e` is *suspended* (parked on a side list, replayed after
//!   the merge fixes land) rather than issued against stale state. The
//!   replayed visit always re-queues (`e > W_e ≥ t`) and touches only
//!   stream-private state, so its deferral commutes with every other
//!   event.
//! * **Provisional completions.** A `fetch_add`'s completion depends on
//!   hotspot serialization only the merge can order, so its ready time and
//!   lookahead-ring entry carry the lower bound `issue_at + latency` until
//!   the merge fix rewrites them (ring slots are addressed absolutely, so
//!   the fix lands even after pops). A forced lookahead pop that would
//!   consume a provisional ring entry suspends instead. Wheel pushes made
//!   from provisional wake hints are lower bounds: the early pop recomputes
//!   `e` from fixed values and re-queues, changing host-side event counts
//!   but no simulated quantity.
//! * **Overwrite guard.** A later in-window write may clobber a register
//!   still awaiting its merge fix (plain WAR over an in-flight load /
//!   `fetch_add` destination). Each pending fix carries a per-register
//!   sequence number; any intervening register write retires the number,
//!   so a stale fix is dropped exactly when the single-step engine's write
//!   order would have buried it. Trace batching is gated off while a
//!   stream has a pending fix (batch extent is host-side policy — PR 2's
//!   schedule-preservation lemma makes any horizon-respecting split,
//!   including "no batch", issue at identical times).
//! * **Batch horizon.** In-window batches use the *local* wheel front
//!   capped at `W_e`: same-processor streams are always co-partitioned, so
//!   the local front is the exact same-processor constraint; other
//!   partitions' events commute with private ops (the same cross-processor
//!   argument the shared-wheel engines already rely on); and the `W_e` cap
//!   keeps every batched slot inside the window where readiness implies
//!   finality.
//!
//! # Full/empty synchronization (`ReadFE`/`WriteEF`/`ReadFF`)
//!
//! A sync op's *outcome* (proceed vs. retry) depends on globally ordered
//! tag state, so unlike a load it cannot simply be logged: the outcome
//! steers the stream's own schedule (pc, retry wake) within the window.
//! Two mechanisms make it windowable anyway:
//!
//! * **Local decidability.** Tag words are monotone under the program's
//!   *capabilities*: only a `readfe` ever empties a word and only a
//!   `writeef` ever fills one. A worker therefore decides an outcome
//!   locally whenever no instruction in the program could flip the
//!   observed tag before this op's merge position — stuck-tag faults pin
//!   the outcome outright; a full word stays full if the program contains
//!   no `readfe`; an empty word stays empty if it contains no `writeef`.
//!   Decided successes are logged like fetch-adds ([`MemKind::SyncOk`]:
//!   provisional ring slot + fix with the hotspot-serialized completion);
//!   decided failures are control events replayed for the deadlock
//!   tracker. Crucially a decided success never *changes* a tag (a
//!   non-stuck `readfe` is never decidable — it itself is the program's
//!   `readfe`), so all value-log entries remain tag-neutral.
//! * **Stop-at-undecidable rounds.** An undecidable op parks its stream
//!   *and halts its partition's pop loop* (keeping the partition's log
//!   append-ordered). The merge then runs in rounds within the same
//!   window: the round frontier `F` is the earliest parked key; all
//!   logged operations with key `< F` are applied; control events are
//!   replayed serially in global `(t, id)` order; and the single parked
//!   op *at* `F` — now the globally next sync op, with every earlier
//!   effect applied — is resolved against real memory and its outcome
//!   mailed back ([`Resolution`]). The window advances only when no
//!   partition is stopped, i.e. when the log is fully drained. Programs
//!   without undecidable ops (e.g. `readff`-only conflict detection) pay
//!   zero extra rounds.
//!
//! Deadlock detection replays `SyncFail`/`Halt` control events through
//! the shared [`BlockTracker`] in global key order, probing tags that at
//! that point reflect exactly the resolutions with smaller keys — so
//! `SimError::Deadlock` diagnostics (cycle, per-stream blocks, observed
//! tags) are bit-identical to the single-step oracle's.
//!
//! # Sharded merge
//!
//! The apply phase itself runs in parallel: every logged value op is
//! routed (at log time) to `hash(addr) % W` and each participant applies
//! one shard's k-way merge under the same `(t, id)` order. Per-address
//! state (word value, tag, hotspot [`WordFree`] chain) lives entirely
//! within one shard, so the per-address apply order — the only order
//! memory semantics observe — equals the single-wheel pop order exactly;
//! counters and `last_completion` fold commutatively from per-shard
//! deltas. Memory words are touched through [`MemWords`], a raw view
//! whose phase discipline (workers read tags only between apply phases;
//! apply phases touch only their own shard's addresses) is enforced by
//! the round barriers.
//!
//! Worker count never affects simulated quantities — `W = 1` runs the same
//! windowed loop without threads, and the differential suite pins `W ∈
//! {1, 2, 4, 8}` against the single-step oracle.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use archgraph_core::error::SimError;

use crate::compiled::RegionOut;
use crate::fault::{BlockTracker, FaultPlan};
use crate::isa::{Instr, Program, NREGS, N_OP_CLASSES};
use crate::machine::{batch_limit, decode, try_batch, Decoded, Stream, WordFree};
use crate::memory::{self, MemCounters, MemWords, Memory};
use crate::report::EngineStats;
use crate::wheel::TimeWheel;

/// "No pending memory fix" sentinel in the per-register sequence table.
const NONE_FIX: u32 = u32::MAX;

/// Shard index a memory address's log entries route to. Any pure
/// function of the address works (per-address state never crosses
/// shards); Fibonacci hashing keeps striding access patterns balanced.
#[inline]
fn shard_of(addr: usize, shards: usize) -> usize {
    (addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) % shards
}

/// Read-only per-region context shared by every partition.
struct Env<'a> {
    instrs: &'a [Instr],
    decoded: &'a [Decoded],
    streams_per_proc: usize,
    latency: u64,
    /// Failed-sync retry delay in thirds (`sync_retry_cycles * 3`).
    retry: u64,
    lookahead: usize,
    /// Tag-transition capabilities of the whole program: what the local
    /// sync decidability rules may assume other streams can do.
    has_readfe: bool,
    has_writeef: bool,
    /// Shard count for the parallel apply (= effective worker count).
    shards: usize,
    /// First global stream id of each partition (fix routing).
    stream_lo: Vec<usize>,
    /// Raw view of the memory words; see [`MemWords`] for the phase
    /// discipline that makes the unsafe accesses sound.
    words: MemWords,
    /// Watchdog boundary in thirds: no partition pops or batches an issue
    /// slot past it, so every engine simulates exactly the same prefix
    /// before [`SimError::CycleBudgetExceeded`] fires at the merge.
    budget_thirds: u64,
    /// Copy of the memory image's fault plan. Workers never touch
    /// [`Memory`], yet completion times must carry injected latency;
    /// every fault decision is a pure function of `(seed, addr)` or — on
    /// the structural axis — of `(seed, proc, issue_at)`, quantities the
    /// logged [`MemOp`] carries, so a worker-local copy perturbs
    /// identically to the merge's own image.
    fault: Option<FaultPlan>,
}

impl Env<'_> {
    /// Issuing processor of global stream `id` (fault decisions on the
    /// structural axis are keyed by processor, not stream).
    #[inline]
    fn proc_of(&self, id: u32) -> usize {
        id as usize / self.streams_per_proc
    }

    /// Combined extra completion latency for a memory op (address spike
    /// plus degraded link plus brownout), all pure functions of
    /// quantities the logged op carries, so the worker that issues and
    /// the shard that merges compute the identical number.
    #[inline]
    fn mem_extra(&self, proc: usize, addr: usize, issue_at: u64) -> u64 {
        self.fault.as_ref().map_or(0, |f| {
            f.extra_mem_latency(proc, addr, issue_at, self.latency)
        })
    }

    /// First non-stalled issue time ≥ `t` for `proc`.
    #[inline]
    fn stall_adjust(&self, proc: usize, t: u64) -> u64 {
        self.fault.as_ref().map_or(t, |f| f.stall_adjust(proc, t))
    }

    /// Start of the next stall window strictly after `t` for `proc`
    /// (`u64::MAX` when nothing stalls): a batching horizon.
    #[inline]
    fn next_stall(&self, proc: usize, t: u64) -> u64 {
        self.fault
            .as_ref()
            .map_or(u64::MAX, |f| f.next_stall_start(proc, t))
    }

    #[inline]
    fn extra_wake_delay(&self, addr: usize) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.extra_wake_delay(addr))
    }

    #[inline]
    fn stuck_tag(&self, addr: usize) -> Option<bool> {
        self.fault.as_ref().and_then(|f| f.stuck_tag(addr))
    }

    /// The full/empty state a sync op observes at `addr` right now, with
    /// stuck faults folded in — the worker-side twin of
    /// `Memory::effective_full`.
    ///
    /// # Safety
    /// Caller must be outside any apply phase (see [`MemWords`]).
    #[inline]
    unsafe fn effective_full(&self, addr: usize) -> bool {
        match self.stuck_tag(addr) {
            Some(tag) => tag,
            None => self.words.full(addr),
        }
    }
}

/// Sync-op identity carried through window logs and control events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncOp {
    ReadFE,
    WriteEF,
    ReadFF,
}

impl SyncOp {
    /// The static name the deadlock diagnostics use (must match the
    /// interpreter's strings byte-for-byte).
    fn name(self) -> &'static str {
        match self {
            SyncOp::ReadFE => "readfe",
            SyncOp::WriteEF => "writeef",
            SyncOp::ReadFF => "readff",
        }
    }
}

/// A shared-memory operation logged in-window, applied at the merge.
struct MemOp {
    /// Pop key (equals the issue check's `e`): the merge sort key.
    t: u64,
    /// Global stream id: the merge tie-break.
    id: u32,
    /// Pending-fix sequence number (guards destination-register fix-up).
    fid: u32,
    issue_at: u64,
    addr: usize,
    kind: MemKind,
}

enum MemKind {
    Load {
        dst: u8,
    },
    Store {
        val: i64,
    },
    FetchAdd {
        delta: i64,
        dst: u8,
        slot: u8,
    },
    /// A locally decided sync success. Tag-neutral by construction (see
    /// module docs), so it shards like any value op; the merge applies
    /// the real memory op, serializes the word hotspot, and mails back a
    /// fetch-add-shaped fix. `src` is the stored value for `writeef`
    /// (whose `dst` is 0).
    SyncOk {
        op: SyncOp,
        src: i64,
        dst: u8,
        slot: u8,
    },
}

/// A control event: replayed serially in global `(t, id)` order during
/// the merge's control phase (tracker updates, deadlock probes, parked
/// resolutions). Never sharded.
#[derive(Clone, Copy)]
struct CtlOp {
    t: u64,
    id: u32,
    pc: u32,
    issue_at: u64,
    addr: usize,
    kind: CtlKind,
}

#[derive(Clone, Copy)]
enum CtlKind {
    /// A locally decided sync failure: counts a retry, feeds the
    /// tracker, probes for deadlock. The word itself is untouched.
    SyncFail { op: SyncOp },
    /// An undecidable sync op: the partition stopped here; the merge
    /// resolves it at the round frontier. `src` is the would-be stored
    /// value for `writeef`.
    SyncWait { op: SyncOp, src: i64 },
    /// A stream ran off the program (or executed `Halt`).
    Halt,
}

/// Outcome of a parked sync op, mailed back to the owning partition.
#[derive(Clone, Copy)]
struct Resolution {
    success: bool,
    val: i64,
    done: u64,
}

/// A stream parked on an undecidable sync op, waiting for its
/// [`Resolution`].
struct Parked {
    li: u32,
    id: u32,
    pc: usize,
    addr: usize,
    issue_at: u64,
    dst: u8,
}

/// Merge-phase result handed back to the owning partition: the value (and,
/// for `fetch_add`, the hotspot-serialized completion time) a logged
/// operation resolved to.
enum Fix {
    LoadVal {
        local: u32,
        fid: u32,
        dst: u8,
        val: i64,
    },
    FetchAdd {
        local: u32,
        fid: u32,
        dst: u8,
        slot: u8,
        val: i64,
        done: u64,
    },
}

/// Per-partition mailbox: the worker deposits its control events, stop
/// key and next pending-event time; the coordinator deposits fixes and
/// resolutions. (Value ops go straight into the shard queues.) Locked
/// once per phase per side, so the mutex is uncontended by construction.
#[derive(Default)]
struct Mailbox {
    ctl: Vec<CtlOp>,
    fixes: Vec<Fix>,
    /// Key of the undecidable op this partition just parked on, if any.
    stop_key: Option<(u64, u32)>,
    /// Outcome for this partition's parked op, deposited by the merge.
    resolve: Option<Resolution>,
    next_event: u64,
}

/// One shard of the parallel apply phase: per-partition pending runs of
/// value ops (each ascending by `(t, id)` for the partition's whole
/// lifetime, with a consumed-prefix cursor — a round may apply only a
/// prefix), plus all per-address merge state and commutative output.
struct ShardState {
    runs: Vec<ShardRun>,
    word_free: WordFree,
    counters: MemCounters,
    last_completion: u64,
    /// Fixes produced by this shard, routed per partition.
    fixes: Vec<Vec<Fix>>,
}

#[derive(Default)]
struct ShardRun {
    ops: Vec<MemOp>,
    lo: usize,
}

/// Apply one shard's pending value ops with key `< fr`, k-way merged
/// across partitions in ascending `(t, id)` — per address this is
/// exactly the single-wheel order, which is the only order the memory
/// semantics can observe.
fn apply_shard(sh: &mut ShardState, fr: (u64, u32), env: &Env) {
    loop {
        let mut best: Option<((u64, u32), usize)> = None;
        for (k, run) in sh.runs.iter().enumerate() {
            if let Some(op) = run.ops.get(run.lo) {
                let key = (op.t, op.id);
                if key < fr && best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, k));
                }
            }
        }
        let Some((_, k)) = best else { break };
        let run = &mut sh.runs[k];
        let op = &run.ops[run.lo];
        run.lo += 1;
        let local = (op.id as usize - env.stream_lo[k]) as u32;
        // SAFETY: shard routing is a pure function of the address, so
        // every op on this word lands in this shard, and this thread is
        // the only one applying this shard this phase.
        let w = unsafe { env.words.word(op.addr) };
        let extra = env.mem_extra(env.proc_of(op.id), op.addr, op.issue_at);
        match op.kind {
            MemKind::Load { dst } => {
                let v = memory::word_load(w, &mut sh.counters);
                let done = op.issue_at + env.latency + extra;
                sh.last_completion = sh.last_completion.max(done);
                if dst != 0 {
                    sh.fixes[k].push(Fix::LoadVal {
                        local,
                        fid: op.fid,
                        dst,
                        val: v,
                    });
                }
            }
            MemKind::Store { val } => {
                memory::word_store(w, &mut sh.counters, val);
                let done = op.issue_at + env.latency + extra;
                sh.last_completion = sh.last_completion.max(done);
            }
            MemKind::FetchAdd { delta, dst, slot } => {
                let old = memory::word_fetch_add(w, &mut sh.counters, delta);
                let wf = sh.word_free.slot(op.addr);
                let service = (*wf).max(op.issue_at);
                *wf = service + 3;
                let done = service + env.latency + extra;
                sh.last_completion = sh.last_completion.max(done);
                sh.fixes[k].push(Fix::FetchAdd {
                    local,
                    fid: op.fid,
                    dst,
                    slot,
                    val: old,
                    done,
                });
            }
            MemKind::SyncOk {
                op: sop,
                src,
                dst,
                slot,
            } => {
                let stuck = env.stuck_tag(op.addr);
                let val = match sop {
                    SyncOp::ReadFE => memory::word_readfe(w, &mut sh.counters, stuck)
                        .expect("locally decided readfe success failed at the merge"),
                    SyncOp::ReadFF => memory::word_readff(w, &mut sh.counters, stuck)
                        .expect("locally decided readff success failed at the merge"),
                    SyncOp::WriteEF => {
                        let ok = memory::word_writeef(w, &mut sh.counters, stuck, src);
                        assert!(ok, "locally decided writeef success failed at the merge");
                        0
                    }
                };
                let wf = sh.word_free.slot(op.addr);
                let service = (*wf).max(op.issue_at);
                *wf = service + 3;
                let done = service + env.latency + extra;
                sh.last_completion = sh.last_completion.max(done);
                sh.fixes[k].push(Fix::FetchAdd {
                    local,
                    fid: op.fid,
                    dst,
                    slot,
                    val,
                    done,
                });
            }
        }
    }
    for run in &mut sh.runs {
        if run.lo == run.ops.len() {
            run.ops.clear();
            run.lo = 0;
        }
    }
}

/// Sense-reversing spin barrier. Four crossings per merge round over at
/// most a few dozen participants; spinning (with a yield fallback) beats
/// a mutex/condvar round-trip at the window rates the bench cells hit.
/// When the host cannot actually run all participants at once
/// (oversubscription), spinning only steals the quantum the straggler
/// needs, so the spin budget drops to zero and waiters yield immediately.
struct SpinBarrier {
    n: usize,
    spin_budget: u32,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        let oversubscribed = std::thread::available_parallelism()
            .map(|c| c.get() < n)
            .unwrap_or(true);
        SpinBarrier {
            n,
            spin_budget: if oversubscribed { 0 } else { 1 << 14 },
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            if spins < self.spin_budget {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Coordination state shared by the main thread and the workers.
struct Shared {
    barrier: SpinBarrier,
    /// End (exclusive, in thirds) of the window being executed.
    window_end: AtomicU64,
    /// Round frontier `(t, id)`: the apply phase consumes value ops with
    /// strictly smaller keys. Set by the coordinator between the exec and
    /// apply barriers.
    fr_t: AtomicU64,
    fr_id: AtomicU32,
    done: AtomicBool,
    boxes: Vec<Mutex<Mailbox>>,
    /// Address-sharded pending value ops + per-address merge state; shard
    /// `k` is applied by participant `k` during the apply phase.
    shards: Vec<Mutex<ShardState>>,
}

/// One worker partition: a contiguous processor range with its private
/// wheel, plus the bookkeeping the window/merge protocol needs.
struct Partition<'a> {
    streams: &'a mut [Stream],
    proc_clock: &'a mut [u64],
    /// Global id of this partition's first stream.
    stream_lo: usize,
    /// Global index of this partition's first processor.
    proc_lo: usize,
    wheel: TimeWheel,
    /// Provisional-completion bitmask over each stream's lookahead ring
    /// (absolute slots): set on `fetch_add` push, cleared by its fix.
    prov: Vec<u16>,
    /// Pending-fix sequence per register, [`NONE_FIX`] when none.
    seq: Vec<[u32; NREGS]>,
    /// Count of registers with a pending fix (gates trace batching).
    cnt: Vec<u32>,
    /// Suspended visits `(t, id)`, replayed after the next merge.
    side: Vec<(u64, u32)>,
    /// Per-shard value-op logs for the current phase, appended in pop
    /// order (each therefore ascending in `(t, id)`).
    slog: Vec<Vec<MemOp>>,
    /// Control events for the current phase, in pop order.
    ctl: Vec<CtlOp>,
    /// Stream parked on an undecidable sync op. While set, the whole
    /// partition's pop loop is stopped (preserving log append order);
    /// cleared by [`Partition::apply_resolution`].
    parked: Option<Parked>,
    /// Key the partition parked at this phase (deposited once).
    stop_key: Option<(u64, u32)>,
    fix_seq: u32,
    issued: u64,
    issued_thirds: u64,
    op_mix: [u64; N_OP_CLASSES],
    stats: EngineStats,
}

impl Partition<'_> {
    /// Apply the previous window's merge fixes. Runs before anything else
    /// in a phase, so every provisional value is final before execution.
    fn apply_fixes(&mut self, fixes: &mut Vec<Fix>) {
        for f in fixes.drain(..) {
            match f {
                Fix::LoadVal {
                    local,
                    fid,
                    dst,
                    val,
                } => {
                    let li = local as usize;
                    let di = dst as usize;
                    if self.seq[li][di] == fid {
                        self.seq[li][di] = NONE_FIX;
                        self.cnt[li] -= 1;
                        self.streams[li].regs[di] = val;
                    }
                }
                Fix::FetchAdd {
                    local,
                    fid,
                    dst,
                    slot,
                    val,
                    done,
                } => {
                    let li = local as usize;
                    let s = &mut self.streams[li];
                    s.out_set_slot(slot as usize, done);
                    self.prov[li] &= !(1u16 << slot);
                    let di = dst as usize;
                    if di != 0 && self.seq[li][di] == fid {
                        self.seq[li][di] = NONE_FIX;
                        self.cnt[li] -= 1;
                        s.regs[di] = val;
                        s.reg_ready[di] = done;
                    }
                }
            }
        }
    }

    /// Replay visits suspended earlier. For each visit whose register and
    /// ring state is fully final, perform exactly the pop-time work the
    /// single-step engine would have: recompute `e`, drain the lookahead
    /// ring, take the forced pop if the ring is full, and re-queue (a
    /// suspended visit always has `e > t`, so it never issues here). All
    /// of it is stream-private, so doing it after other partitions'
    /// higher-keyed events is a pure commutation.
    ///
    /// Mid-window rounds can reach here before every fix has landed (a
    /// stopped partition defers part of the log); a visit whose stream
    /// still has any provisional register or ring entry simply stays
    /// parked — by the time the window advances, the log is fully
    /// applied and the side list drains completely, which is the old
    /// single-round invariant.
    fn replay_suspended(&mut self, env: &Env) {
        if self.side.is_empty() {
            return;
        }
        let side = std::mem::take(&mut self.side);
        for (t, id) in side {
            let li = id as usize - self.stream_lo;
            if self.cnt[li] != 0 || self.prov[li] != 0 {
                self.side.push((t, id));
                continue;
            }
            let s = &mut self.streams[li];
            let d = env.decoded[s.pc];
            let mut e = t
                .max(s.reg_ready[d.src0 as usize])
                .max(s.reg_ready[d.src1 as usize]);
            while let Some(c) = s.out_front() {
                if c <= e {
                    s.out_pop();
                } else {
                    break;
                }
            }
            if d.is_memory && s.out_len as usize >= env.lookahead {
                // The window is at its limit, so the ring holds
                // `lookahead ≥ 1` entries and the front exists.
                let c = s
                    .out_front()
                    .expect("outstanding ring at the lookahead limit is non-empty");
                e = e.max(c);
                s.out_pop();
            }
            debug_assert!(e > t, "suspended visits re-queue past the window");
            self.wheel.push(e, id);
        }
    }

    /// Wake the parked stream with its resolved sync outcome, mirroring
    /// the single-step engine's post-outcome scheduling exactly. On
    /// success the merge already accounted the tracker transition (and a
    /// possible terminal halt), so only stream-private state moves here.
    fn apply_resolution(&mut self, r: Resolution, env: &Env) {
        let p = self
            .parked
            .take()
            .expect("resolution arrived without a parked stream");
        let li = p.li as usize;
        let s = &mut self.streams[li];
        if r.success {
            let di = p.dst as usize;
            if di != 0 {
                s.regs[di] = r.val;
                s.reg_ready[di] = r.done;
                if self.seq[li][di] != NONE_FIX {
                    // Overwrites a register still awaiting a merge fix:
                    // this later write wins, so retire the fix.
                    self.seq[li][di] = NONE_FIX;
                    self.cnt[li] -= 1;
                }
            }
            s.out_push(r.done);
            s.pc = p.pc + 1;
            if s.pc >= env.instrs.len() {
                // The merge already ran the tracker's halt transition.
                s.halted = true;
                return;
            }
            let dn = env.decoded[s.pc];
            let wake = (p.issue_at + 3)
                .max(s.reg_ready[dn.src0 as usize])
                .max(s.reg_ready[dn.src1 as usize]);
            self.wheel.push(wake, p.id);
        } else {
            let dn = env.decoded[p.pc];
            let wake = (p.issue_at + env.retry + env.extra_wake_delay(p.addr))
                .max(s.reg_ready[dn.src0 as usize])
                .max(s.reg_ready[dn.src1 as usize]);
            self.wheel.push(wake, p.id);
        }
    }

    /// End-of-phase deposit: value ops into the shard queues, control
    /// events / stop key / next-event hint into the mailbox.
    fn deposit(&mut self, k: usize, shared: &Shared, we: u64) {
        for (sx, v) in self.slog.iter_mut().enumerate() {
            if !v.is_empty() {
                shared.shards[sx].lock().unwrap().runs[k].ops.append(v);
            }
        }
        let mut mb = shared.boxes[k].lock().unwrap();
        if !self.ctl.is_empty() {
            mb.ctl.append(&mut self.ctl);
        }
        mb.stop_key = self.stop_key.take();
        mb.next_event = self.next_event(we);
    }

    /// Earliest pending event after a window: the wheel front, or — if
    /// suspended visits are still awaiting fixes — the just-finished
    /// window end as a conservative stand-in (their re-queue times are
    /// provably beyond it).
    fn next_event(&mut self, we: u64) -> u64 {
        let w = self.wheel.peek().map_or(u64::MAX, |(t, _)| t);
        if self.side.is_empty() {
            w
        } else {
            w.min(we)
        }
    }

    /// The issue loop over one bounded window `[.., we)` — line-for-line
    /// the single-step loop in `machine.rs`, except that shared-memory
    /// effects are logged for the merge and visits that would touch
    /// non-final state are suspended.
    fn run_window(&mut self, we: u64, env: &Env) {
        // A parked partition stays stopped until its resolution arrives:
        // popping other streams would break the append-order invariant of
        // the per-partition logs (a resumed stream's continuation keys
        // precede theirs).
        if self.parked.is_some() {
            return;
        }
        // Clamp the pop range (not the window bookkeeping: suspension and
        // finality reason about the true `we`) so no event past the
        // watchdog boundary executes; the merge then reports the budget
        // error off the untouched pending-event times.
        let pop_we = we.min(env.budget_thirds.saturating_add(1));
        while let Some((t, id)) = self.wheel.pop_before(pop_we) {
            self.stats.events += 1;
            let li = id as usize - self.stream_lo;
            let proc = id as usize / env.streams_per_proc;
            let pi = proc - self.proc_lo;
            let s = &mut self.streams[li];
            debug_assert!(!s.halted);
            if s.pc >= env.instrs.len() {
                s.halted = true;
                self.ctl.push(CtlOp {
                    t,
                    id,
                    pc: s.pc as u32,
                    issue_at: t,
                    addr: 0,
                    kind: CtlKind::Halt,
                });
                continue;
            }
            let instr = env.instrs[s.pc];
            let d = env.decoded[s.pc];

            let rmax = s.reg_ready[d.src0 as usize].max(s.reg_ready[d.src1 as usize]);
            if rmax > we {
                // A source is still in flight past the window — possibly a
                // provisional lower bound. Park the visit; the replay after
                // the merge sees final values.
                self.side.push((t, id));
                continue;
            }
            let mut e = t.max(rmax);
            while let Some(c) = s.out_front() {
                // Ring entries ≤ e ≤ we are final (provisional ones are
                // > we by construction), so this drain is exact.
                if c <= e {
                    s.out_pop();
                } else {
                    break;
                }
            }
            if d.is_memory && s.out_len as usize >= env.lookahead {
                if self.prov[li] & (1u16 << s.out_front_slot()) != 0 {
                    // The forced pop would consume a provisional
                    // completion; its final time arrives with the merge.
                    self.side.push((t, id));
                    continue;
                }
                // The window is at its limit, so the ring holds
                // `lookahead ≥ 1` entries and the front exists.
                let c = s
                    .out_front()
                    .expect("outstanding ring at the lookahead limit is non-empty");
                e = e.max(c);
                s.out_pop();
            }
            if e > t {
                self.wheel.push(e, id);
                continue;
            }
            // Same stall adjustment as the serial engines: a processor in a
            // stall window issues nothing until the window closes.
            let issue_at = env.stall_adjust(proc, e.max(self.proc_clock[pi]));

            if d.batchable && self.cnt[li] == 0 {
                // Local front is the exact same-processor horizon (whole
                // processors per partition); the `we` cap keeps batched
                // slots where readiness implies finality. Batching is
                // skipped while a register fix is pending so no batched
                // write can bury one unnoticed.
                let limit = batch_limit(&mut self.wheel, id)
                    .min(we)
                    .min(env.budget_thirds.saturating_add(1))
                    .min(env.next_stall(proc, issue_at));
                if let Some(done) = try_batch(
                    limit,
                    s,
                    env.instrs,
                    env.decoded,
                    d,
                    issue_at,
                    &mut self.op_mix,
                ) {
                    self.proc_clock[pi] = done.clock;
                    self.issued += done.n_exec;
                    self.issued_thirds += done.n_exec;
                    if done.n_exec >= 2 {
                        self.stats.batches += 1;
                        self.stats.batched_instrs += done.n_exec;
                    }
                    if done.halted {
                        s.halted = true;
                        self.ctl.push(CtlOp {
                            t,
                            id,
                            pc: s.pc as u32,
                            issue_at,
                            addr: 0,
                            kind: CtlKind::Halt,
                        });
                        continue;
                    }
                    let dn = env.decoded[s.pc];
                    let wake = done
                        .clock
                        .max(s.reg_ready[dn.src0 as usize])
                        .max(s.reg_ready[dn.src1 as usize]);
                    self.wheel.push(wake, id);
                    continue;
                }
            }

            let cost = u64::from(d.cost);
            self.proc_clock[pi] = issue_at + cost;
            self.issued += 1;
            self.issued_thirds += cost;
            self.op_mix[d.class_idx as usize] += 1;
            let mut next_ready = issue_at + cost;
            let mut next_pc = s.pc + 1;

            macro_rules! wreg {
                ($dst:expr, $val:expr, $ready:expr) => {{
                    let di = $dst.0 as usize;
                    if di != 0 {
                        s.regs[di] = $val;
                        s.reg_ready[di] = $ready;
                        if self.seq[li][di] != NONE_FIX {
                            // This write buries a pending memory fix: the
                            // single-step engine's later write wins there
                            // too, so retire the fix.
                            self.seq[li][di] = NONE_FIX;
                            self.cnt[li] -= 1;
                        }
                    }
                }};
            }

            match instr {
                Instr::Li { dst, imm } => wreg!(dst, imm, issue_at + 1),
                Instr::Mov { dst, src } => {
                    wreg!(dst, s.regs[src.0 as usize], issue_at + 1)
                }
                Instr::Add { dst, a, b } => {
                    let v = s.regs[a.0 as usize].wrapping_add(s.regs[b.0 as usize]);
                    wreg!(dst, v, issue_at + 1)
                }
                Instr::AddI { dst, a, imm } => {
                    let v = s.regs[a.0 as usize].wrapping_add(imm);
                    wreg!(dst, v, issue_at + 1)
                }
                Instr::Sub { dst, a, b } => {
                    let v = s.regs[a.0 as usize].wrapping_sub(s.regs[b.0 as usize]);
                    wreg!(dst, v, issue_at + 1)
                }
                Instr::Mul { dst, a, b } => {
                    let v = s.regs[a.0 as usize].wrapping_mul(s.regs[b.0 as usize]);
                    wreg!(dst, v, issue_at + 1)
                }
                Instr::Load { dst, addr, off } => {
                    let a = (s.regs[addr.0 as usize] + off) as usize;
                    let done = issue_at + env.latency + env.mem_extra(proc, a, issue_at);
                    let fid = self.fix_seq;
                    self.fix_seq += 1;
                    let di = dst.0 as usize;
                    if di != 0 {
                        // Ready time is final; the value lands with the
                        // merge fix. Readers gate on the ready time, so
                        // the stale `regs` word is unreachable meanwhile.
                        s.reg_ready[di] = done;
                        if self.seq[li][di] == NONE_FIX {
                            self.cnt[li] += 1;
                        }
                        self.seq[li][di] = fid;
                    }
                    self.slog[shard_of(a, env.shards)].push(MemOp {
                        t,
                        id,
                        fid,
                        issue_at,
                        addr: a,
                        kind: MemKind::Load { dst: dst.0 },
                    });
                    s.out_push(done);
                }
                Instr::Store { src, addr, off } => {
                    let a = (s.regs[addr.0 as usize] + off) as usize;
                    self.slog[shard_of(a, env.shards)].push(MemOp {
                        t,
                        id,
                        fid: NONE_FIX,
                        issue_at,
                        addr: a,
                        kind: MemKind::Store {
                            val: s.regs[src.0 as usize],
                        },
                    });
                    s.out_push(issue_at + env.latency + env.mem_extra(proc, a, issue_at));
                }
                Instr::FetchAdd {
                    dst,
                    addr,
                    off,
                    delta,
                } => {
                    let a = (s.regs[addr.0 as usize] + off) as usize;
                    // Lower bound on the completion; the merge serializes
                    // the word hotspot and rewrites ready/ring with the
                    // true `service + latency` (injected latency only
                    // adds, so the bound survives fault plans too).
                    let done_lb = issue_at + env.latency + env.mem_extra(proc, a, issue_at);
                    let slot = s.out_next_slot();
                    let fid = self.fix_seq;
                    self.fix_seq += 1;
                    let di = dst.0 as usize;
                    if di != 0 {
                        s.reg_ready[di] = done_lb;
                        if self.seq[li][di] == NONE_FIX {
                            self.cnt[li] += 1;
                        }
                        self.seq[li][di] = fid;
                    }
                    self.prov[li] |= 1u16 << slot;
                    self.slog[shard_of(a, env.shards)].push(MemOp {
                        t,
                        id,
                        fid,
                        issue_at,
                        addr: a,
                        kind: MemKind::FetchAdd {
                            delta: s.regs[delta.0 as usize],
                            dst: dst.0,
                            slot: slot as u8,
                        },
                    });
                    s.out_push(done_lb);
                }
                Instr::ReadFE { dst, addr, off }
                | Instr::ReadFF { dst, addr, off }
                | Instr::WriteEF {
                    src: dst,
                    addr,
                    off,
                } => {
                    // (`WriteEF`'s `src` binds to `dst` only to share the
                    // pattern; the roles are split right below.)
                    let sop = match instr {
                        Instr::ReadFE { .. } => SyncOp::ReadFE,
                        Instr::ReadFF { .. } => SyncOp::ReadFF,
                        _ => SyncOp::WriteEF,
                    };
                    let (dreg, sval) = match sop {
                        SyncOp::WriteEF => (0u8, s.regs[dst.0 as usize]),
                        _ => (dst.0, 0i64),
                    };
                    let a = (s.regs[addr.0 as usize] + off) as usize;
                    let need_full = sop != SyncOp::WriteEF;
                    let stuck = env.stuck_tag(a);
                    // SAFETY: exec phases never overlap an apply phase
                    // (barrier-separated), so the tag read is quiescent.
                    let full = match stuck {
                        Some(tag) => tag,
                        None => unsafe { env.words.full(a) },
                    };
                    // Local decidability: `Some(outcome)` when no
                    // instruction in the program could flip the observed
                    // tag before this op's merge position (tags are
                    // monotone under the program's capabilities).
                    let decision = match stuck {
                        Some(tag) => Some(tag == need_full),
                        None if full => {
                            if env.has_readfe {
                                None
                            } else {
                                Some(need_full)
                            }
                        }
                        None => {
                            if env.has_writeef {
                                None
                            } else {
                                // A `writeef` here would itself make
                                // `has_writeef` true.
                                debug_assert!(need_full);
                                Some(false)
                            }
                        }
                    };
                    match decision {
                        Some(true) => {
                            // Logged like a fetch-add: provisional ring
                            // slot + ready lower bound until the merge's
                            // hotspot-serialized fix lands.
                            let done_lb = issue_at + env.latency + env.mem_extra(proc, a, issue_at);
                            let slot = s.out_next_slot();
                            let fid = self.fix_seq;
                            self.fix_seq += 1;
                            let di = dreg as usize;
                            if di != 0 {
                                s.reg_ready[di] = done_lb;
                                if self.seq[li][di] == NONE_FIX {
                                    self.cnt[li] += 1;
                                }
                                self.seq[li][di] = fid;
                            }
                            self.prov[li] |= 1u16 << slot;
                            self.slog[shard_of(a, env.shards)].push(MemOp {
                                t,
                                id,
                                fid,
                                issue_at,
                                addr: a,
                                kind: MemKind::SyncOk {
                                    op: sop,
                                    src: sval,
                                    dst: dreg,
                                    slot: slot as u8,
                                },
                            });
                            s.out_push(done_lb);
                        }
                        Some(false) => {
                            self.ctl.push(CtlOp {
                                t,
                                id,
                                pc: s.pc as u32,
                                issue_at,
                                addr: a,
                                kind: CtlKind::SyncFail { op: sop },
                            });
                            next_pc = s.pc;
                            next_ready = issue_at + env.retry + env.extra_wake_delay(a);
                        }
                        None => {
                            // Undecidable: park the stream and stop the
                            // partition's pop loop — the merge resolves
                            // this op at the round frontier and mails the
                            // outcome back.
                            self.ctl.push(CtlOp {
                                t,
                                id,
                                pc: s.pc as u32,
                                issue_at,
                                addr: a,
                                kind: CtlKind::SyncWait { op: sop, src: sval },
                            });
                            self.parked = Some(Parked {
                                li: li as u32,
                                id,
                                pc: s.pc,
                                addr: a,
                                issue_at,
                                dst: dreg,
                            });
                            self.stop_key = Some((t, id));
                            break;
                        }
                    }
                }
                Instr::Beq { a, b, target } => {
                    if s.regs[a.0 as usize] == s.regs[b.0 as usize] {
                        next_pc = target;
                    }
                }
                Instr::Bne { a, b, target } => {
                    if s.regs[a.0 as usize] != s.regs[b.0 as usize] {
                        next_pc = target;
                    }
                }
                Instr::Blt { a, b, target } => {
                    if s.regs[a.0 as usize] < s.regs[b.0 as usize] {
                        next_pc = target;
                    }
                }
                Instr::Bge { a, b, target } => {
                    if s.regs[a.0 as usize] >= s.regs[b.0 as usize] {
                        next_pc = target;
                    }
                }
                Instr::Jmp { target } => next_pc = target,
                Instr::Halt => {
                    s.halted = true;
                    self.ctl.push(CtlOp {
                        t,
                        id,
                        pc: s.pc as u32,
                        issue_at,
                        addr: 0,
                        kind: CtlKind::Halt,
                    });
                    continue;
                }
            }

            s.pc = next_pc;
            if s.pc >= env.instrs.len() {
                s.halted = true;
                self.ctl.push(CtlOp {
                    t,
                    id,
                    pc: s.pc as u32,
                    issue_at,
                    addr: 0,
                    kind: CtlKind::Halt,
                });
                continue;
            }
            let dn = env.decoded[s.pc];
            let wake = next_ready
                .max(s.reg_ready[dn.src0 as usize])
                .max(s.reg_ready[dn.src1 as usize]);
            self.wheel.push(wake, id);
        }
    }
}

/// One participant's execution phase within a round: pick up fixes and a
/// possible resolution, replay what became final, run the window (a
/// no-op while parked), and deposit the results. Shared verbatim by the
/// workers and the coordinator (which runs partition 0).
fn run_phase(part: &mut Partition, k: usize, shared: &Shared, env: &Env, fixes: &mut Vec<Fix>) {
    let we = shared.window_end.load(Ordering::Acquire);
    let resolve = {
        let mut mb = shared.boxes[k].lock().unwrap();
        std::mem::swap(fixes, &mut mb.fixes);
        mb.resolve.take()
    };
    part.apply_fixes(fixes);
    if let Some(r) = resolve {
        part.apply_resolution(r, env);
    }
    part.replay_suspended(env);
    part.run_window(we, env);
    part.deposit(k, shared, we);
}

/// One worker's lifetime, four barrier crossings per round: (A) round
/// start → exec phase → (B) exec done — the coordinator collects and
/// sets the frontier — (C) apply start → apply own shard → (D) apply
/// done — the coordinator runs the serial control phase and decides
/// whether the round repeats, the window advances, or the region is done.
fn worker_loop(part: &mut Partition, k: usize, shared: &Shared, env: &Env) {
    let mut fixes: Vec<Fix> = Vec::new();
    loop {
        shared.barrier.wait(); // A
        if shared.done.load(Ordering::Acquire) {
            break;
        }
        run_phase(part, k, shared, env, &mut fixes);
        shared.barrier.wait(); // B
        shared.barrier.wait(); // C
        let fr = (
            shared.fr_t.load(Ordering::Acquire),
            shared.fr_id.load(Ordering::Acquire),
        );
        apply_shard(&mut shared.shards[k].lock().unwrap(), fr, env);
        shared.barrier.wait(); // D
    }
}

/// Coordinator-side pending control events for one partition, ascending
/// in `(t, id)` across the partition's whole lifetime.
#[derive(Default)]
struct CtlRun {
    ops: Vec<CtlOp>,
    lo: usize,
}

/// Execute one region under the partitioned engine. Same contract as the
/// other engines' region runners: every simulated quantity (issue order,
/// clocks, counters, memory image) is bit-identical to the single-step
/// oracle for any `workers`, including 1 — and so are
/// [`SimError::Deadlock`] diagnostics, produced by replaying control
/// events through the shared [`BlockTracker`] in global key order.
///
/// The cycle watchdog: workers stop popping at the budget boundary, and
/// the merge converts "every pending event lies past the budget" into
/// [`SimError::CycleBudgetExceeded`]. (`spent` reads the merged
/// next-event time, which for a pending provisional completion is its
/// lower bound — always past the budget, though it may name an earlier
/// cycle than the single-wheel engines report for the same runaway.)
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_region(
    prog: &Program,
    memory: &mut Memory,
    streams: &mut [Stream],
    proc_clock: &mut [u64],
    streams_per_proc: usize,
    latency: u64,
    retry: u64,
    lookahead: usize,
    workers: usize,
    max_cycles: u64,
    engine_stats: &mut EngineStats,
) -> Result<RegionOut, SimError> {
    let budget_thirds = max_cycles.saturating_mul(3);
    let total = streams.len();
    let p = proc_clock.len();
    let w_eff = workers.clamp(1, p);
    // Window width Δ = latency − 1: an in-window memory operation issues at
    // ≥ the window start T, so it completes at ≥ T + latency = W_e + 1,
    // strictly beyond the window — which is what makes "ready time ≤ W_e"
    // imply "value is final". (The dispatcher guarantees latency ≥ 3.)
    debug_assert!(latency >= 2);
    let delta = latency.saturating_sub(1).max(1);
    let decoded = decode(prog, true);
    let instrs = prog.instrs();
    let stream_lo_tab: Vec<usize> = {
        let mut tab = Vec::with_capacity(w_eff);
        let mut proc_lo = 0usize;
        for k in 0..w_eff {
            tab.push(proc_lo * streams_per_proc);
            proc_lo += p / w_eff + usize::from(k < p % w_eff);
        }
        tab
    };
    let env = Env {
        instrs,
        decoded: &decoded,
        streams_per_proc,
        latency,
        retry,
        lookahead,
        has_readfe: instrs.iter().any(|i| matches!(i, Instr::ReadFE { .. })),
        has_writeef: instrs.iter().any(|i| matches!(i, Instr::WriteEF { .. })),
        shards: w_eff,
        stream_lo: stream_lo_tab,
        budget_thirds,
        fault: memory.fault_plan().cloned(),
        // Created last: `memory` must not be touched again until the
        // thread scope below ends (see MemWords).
        words: memory.words_view(),
    };

    // Carve contiguous whole-processor partitions.
    let mut parts: Vec<Partition> = Vec::with_capacity(w_eff);
    {
        let mut srest = streams;
        let mut crest = proc_clock;
        let mut proc_lo = 0usize;
        for k in 0..w_eff {
            let nproc = p / w_eff + usize::from(k < p % w_eff);
            let (sa, srest2) = srest.split_at_mut(nproc * streams_per_proc);
            let (ca, crest2) = crest.split_at_mut(nproc);
            srest = srest2;
            crest = crest2;
            let stream_lo = proc_lo * streams_per_proc;
            debug_assert_eq!(stream_lo, env.stream_lo[k]);
            let mut wheel = TimeWheel::new(total);
            for i in 0..sa.len() {
                wheel.push(0, (stream_lo + i) as u32);
            }
            let n = sa.len();
            parts.push(Partition {
                streams: sa,
                proc_clock: ca,
                stream_lo,
                proc_lo,
                wheel,
                prov: vec![0u16; n],
                seq: vec![[NONE_FIX; NREGS]; n],
                cnt: vec![0u32; n],
                side: Vec::new(),
                slog: (0..w_eff).map(|_| Vec::new()).collect(),
                ctl: Vec::new(),
                parked: None,
                stop_key: None,
                fix_seq: 0,
                issued: 0,
                issued_thirds: 0,
                op_mix: [0u64; N_OP_CLASSES],
                stats: EngineStats::default(),
            });
            proc_lo += nproc;
        }
    }

    let shared = Shared {
        barrier: SpinBarrier::new(w_eff),
        window_end: AtomicU64::new(delta),
        fr_t: AtomicU64::new(0),
        fr_id: AtomicU32::new(0),
        done: AtomicBool::new(false),
        boxes: (0..w_eff).map(|_| Mutex::new(Mailbox::default())).collect(),
        shards: (0..w_eff)
            .map(|_| {
                Mutex::new(ShardState {
                    runs: (0..w_eff).map(|_| ShardRun::default()).collect(),
                    word_free: WordFree::new(),
                    counters: MemCounters::default(),
                    last_completion: 0,
                    fixes: (0..w_eff).map(|_| Vec::new()).collect(),
                })
            })
            .collect(),
    };

    let mut ctl_completion = 0u64;
    let mut ctl_counters = MemCounters::default();
    let mut rounds = 0u64;
    let mut err: Option<SimError> = None;
    {
        let (head, rest) = parts.split_at_mut(1);
        let p0 = &mut head[0];
        std::thread::scope(|scope| {
            for (i, part) in rest.iter_mut().enumerate() {
                let shared = &shared;
                let env = &env;
                scope.spawn(move || worker_loop(part, i + 1, shared, env));
            }
            // Main thread: partition 0's exec/apply phases plus the
            // serial control phase between rounds.
            let mut tracker = BlockTracker::new(total);
            let mut ctl_pending: Vec<CtlRun> = (0..w_eff).map(|_| CtlRun::default()).collect();
            let mut stops: Vec<Option<(u64, u32)>> = vec![None; w_eff];
            let mut fixes0: Vec<Fix> = Vec::new();
            loop {
                shared.barrier.wait(); // A
                if shared.done.load(Ordering::Acquire) {
                    break;
                }
                rounds += 1;
                run_phase(p0, 0, &shared, &env, &mut fixes0);
                shared.barrier.wait(); // B

                // Collect control events, stops and next-event hints;
                // publish the round frontier.
                let mut t_next = u64::MAX;
                for (k, bx) in shared.boxes.iter().enumerate() {
                    let mut mb = bx.lock().unwrap();
                    if !mb.ctl.is_empty() {
                        ctl_pending[k].ops.append(&mut mb.ctl);
                    }
                    if let Some(skey) = mb.stop_key.take() {
                        stops[k] = Some(skey);
                    }
                    t_next = t_next.min(mb.next_event);
                }
                let we = shared.window_end.load(Ordering::Acquire);
                let pop_we = we.min(budget_thirds.saturating_add(1));
                let stop_min = stops.iter().flatten().copied().min();
                let fr = stop_min.unwrap_or((pop_we, 0));
                shared.fr_t.store(fr.0, Ordering::Release);
                shared.fr_id.store(fr.1, Ordering::Release);
                shared.barrier.wait(); // C
                apply_shard(&mut shared.shards[0].lock().unwrap(), fr, &env);
                shared.barrier.wait(); // D

                // Serial control phase: replay SyncFail/Halt events with
                // key < fr through the tracker in global (t, id) order.
                // Tags probed here reflect exactly the resolutions with
                // smaller keys, so deadlock diagnostics are bit-identical
                // to the single-step engine's.
                // SAFETY (tag probes): workers are parked between D and A.
                'ctl: loop {
                    let mut best: Option<((u64, u32), usize)> = None;
                    for (k, run) in ctl_pending.iter().enumerate() {
                        if let Some(op) = run.ops.get(run.lo) {
                            let key = (op.t, op.id);
                            if key < fr && best.is_none_or(|(bk, _)| key < bk) {
                                best = Some((key, k));
                            }
                        }
                    }
                    let Some((_, k)) = best else { break 'ctl };
                    let op = ctl_pending[k].ops[ctl_pending[k].lo];
                    ctl_pending[k].lo += 1;
                    match op.kind {
                        CtlKind::SyncFail { op: sop } => {
                            ctl_counters.sync_retries += 1;
                            tracker.on_sync_fail(
                                op.id as usize,
                                op.pc as usize,
                                op.addr,
                                sop.name(),
                                op.issue_at,
                            );
                            if let Some(e) =
                                tracker.deadlock_by(|a| unsafe { env.effective_full(a) })
                            {
                                err = Some(e);
                                break 'ctl;
                            }
                        }
                        CtlKind::Halt => {
                            tracker.on_halt(op.id as usize);
                            if let Some(e) =
                                tracker.deadlock_by(|a| unsafe { env.effective_full(a) })
                            {
                                err = Some(e);
                                break 'ctl;
                            }
                        }
                        CtlKind::SyncWait { .. } => {
                            unreachable!("the round frontier bounds the control replay")
                        }
                    }
                }

                // Resolve the parked op at the frontier: it is the
                // globally next sync op, and every effect with a smaller
                // key has been applied, so real memory decides.
                if err.is_none() {
                    if let Some(fkey) = stop_min {
                        let k = stops
                            .iter()
                            .position(|s| *s == Some(fkey))
                            .expect("frontier stop key has an owner");
                        let run = &mut ctl_pending[k];
                        let op = run.ops[run.lo];
                        run.lo += 1;
                        debug_assert_eq!((op.t, op.id), fkey);
                        let CtlKind::SyncWait { op: sop, src } = op.kind else {
                            unreachable!("a stopped partition's next control event is its wait")
                        };
                        let stuck = env.stuck_tag(op.addr);
                        // SAFETY: workers are parked between D and A.
                        let w = unsafe { env.words.word(op.addr) };
                        let outcome = match sop {
                            SyncOp::ReadFE => memory::word_readfe(w, &mut ctl_counters, stuck),
                            SyncOp::ReadFF => memory::word_readff(w, &mut ctl_counters, stuck),
                            SyncOp::WriteEF => {
                                memory::word_writeef(w, &mut ctl_counters, stuck, src).then_some(0)
                            }
                        };
                        let resolution = match outcome {
                            Some(val) => {
                                tracker.on_sync_success(op.id as usize);
                                let done = {
                                    let mut sh =
                                        shared.shards[shard_of(op.addr, w_eff)].lock().unwrap();
                                    let wf = sh.word_free.slot(op.addr);
                                    let service = (*wf).max(op.issue_at);
                                    *wf = service + 3;
                                    service
                                        + latency
                                        + env.mem_extra(env.proc_of(op.id), op.addr, op.issue_at)
                                };
                                ctl_completion = ctl_completion.max(done);
                                if op.pc as usize + 1 >= instrs.len() {
                                    // The resumed stream halts immediately;
                                    // account it here so the tracker sees it
                                    // at this event's key, as single-step
                                    // does.
                                    tracker.on_halt(op.id as usize);
                                    if let Some(e) =
                                        tracker.deadlock_by(|a| unsafe { env.effective_full(a) })
                                    {
                                        err = Some(e);
                                    }
                                }
                                Resolution {
                                    success: true,
                                    val,
                                    done,
                                }
                            }
                            None => {
                                tracker.on_sync_fail(
                                    op.id as usize,
                                    op.pc as usize,
                                    op.addr,
                                    sop.name(),
                                    op.issue_at,
                                );
                                if let Some(e) =
                                    tracker.deadlock_by(|a| unsafe { env.effective_full(a) })
                                {
                                    err = Some(e);
                                }
                                Resolution {
                                    success: false,
                                    val: 0,
                                    done: 0,
                                }
                            }
                        };
                        if err.is_none() {
                            shared.boxes[k].lock().unwrap().resolve = Some(resolution);
                            stops[k] = None;
                        }
                    }
                }

                // Route the round's fixes home.
                for shard in &shared.shards {
                    let mut sh = shard.lock().unwrap();
                    for k in 0..w_eff {
                        if !sh.fixes[k].is_empty() {
                            let mut fx = std::mem::take(&mut sh.fixes[k]);
                            shared.boxes[k].lock().unwrap().fixes.append(&mut fx);
                            sh.fixes[k] = fx; // return the emptied buffer
                        }
                    }
                }

                for run in &mut ctl_pending {
                    if run.lo == run.ops.len() {
                        run.ops.clear();
                        run.lo = 0;
                    }
                }

                if err.is_some() {
                    shared.done.store(true, Ordering::Release);
                } else if stop_min.is_some() {
                    // Same window, next round: the resolved stream's
                    // continuation (or retry) may pop more events.
                } else if t_next == u64::MAX {
                    shared.done.store(true, Ordering::Release);
                } else if t_next > budget_thirds {
                    // Every pending event everywhere lies past the
                    // watchdog boundary; the region can only burn budget
                    // from here. Tear down through the normal done
                    // handshake so the workers exit cleanly.
                    err = Some(SimError::CycleBudgetExceeded {
                        budget: max_cycles,
                        spent: t_next.div_ceil(3),
                        what: "mta cycles",
                    });
                    shared.done.store(true, Ordering::Release);
                } else {
                    shared
                        .window_end
                        .store(t_next.saturating_add(delta), Ordering::Release);
                }
            }
        });
    }

    // The raw word view is dead from here on; fold the per-shard and
    // control-phase deltas back into the owning memory (on the error
    // path too — the counters must reflect the simulated prefix exactly
    // as the single-step engine's would).
    let mut last_completion = ctl_completion;
    let mut delta_c = ctl_counters;
    for shard in &shared.shards {
        let sh = shard.lock().unwrap();
        delta_c.loads += sh.counters.loads;
        delta_c.stores += sh.counters.stores;
        delta_c.sync_ops += sh.counters.sync_ops;
        delta_c.sync_retries += sh.counters.sync_retries;
        delta_c.fetch_adds += sh.counters.fetch_adds;
        last_completion = last_completion.max(sh.last_completion);
    }
    memory.counters.loads += delta_c.loads;
    memory.counters.stores += delta_c.stores;
    memory.counters.sync_ops += delta_c.sync_ops;
    memory.counters.sync_retries += delta_c.sync_retries;
    memory.counters.fetch_adds += delta_c.fetch_adds;

    // Host-side engine accounting lands even when the region errors —
    // `windows > 0` is how the differential suites prove a region really
    // took this path, and deadlocking regions must be provable too.
    engine_stats.windows += rounds;
    for part in &parts {
        engine_stats.events += part.stats.events;
        engine_stats.batches += part.stats.batches;
        engine_stats.batched_instrs += part.stats.batched_instrs;
    }

    if let Some(e) = err {
        return Err(e);
    }

    let mut out = RegionOut {
        issued: 0,
        issued_thirds: 0,
        op_mix: [0u64; N_OP_CLASSES],
        last_completion,
        stats: EngineStats::default(),
    };
    for part in &parts {
        out.issued += part.issued;
        out.issued_thirds += part.issued_thirds;
        for (acc, v) in out.op_mix.iter_mut().zip(part.op_mix.iter()) {
            *acc += v;
        }
    }
    Ok(out)
}
