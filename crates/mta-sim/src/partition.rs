//! The partitioned time-wheel engine ([`crate::machine::MtaEngine::Partitioned`]):
//! deterministic intra-cell parallelism for the MTA simulator.
//!
//! # Scheme
//!
//! Streams are sharded across `W` worker partitions by **whole
//! processors** (contiguous processor ranges, so stream ids and processor
//! clocks split without overlap). Each partition owns a private
//! [`TimeWheel`] and runs the familiar issue loop inside **bounded time
//! windows** `[T, W_e)` with `W_e = T + Δ` and `Δ = latency − 1` thirds.
//! Shared-memory operations (`load` / `store` / `int_fetch_add`) are not
//! applied in-window: the worker logs them and the main thread applies the
//! whole window's log **serially at the barrier**, merged across
//! partitions by the same ascending `(time, stream_id)` key the single
//! wheel pops in.
//!
//! # Determinism argument (DESIGN.md has the long form)
//!
//! * **Merge order = single-wheel pop order.** The single-step engine
//!   applies a memory operation's side effects at its pop, and an issuing
//!   pop has `e == t`, so the global side-effect order is exactly
//!   ascending `(t, id)`. Each partition's log is appended in local pop
//!   order (ascending `(t, id)`), partitions cover disjoint id ranges, and
//!   windows cover disjoint time ranges, so the k-way merge by `(t, id)`
//!   reproduces the global order bit-for-bit — same memory image, same
//!   hotspot (`WordFree`) serialization, same completion times.
//! * **Readiness implies finality.** Any value produced by an in-window
//!   memory operation completes at `issue_at + latency ≥ T + latency =
//!   W_e + 1`, strictly beyond the window. A register whose ready time is
//!   `≤ W_e` therefore already holds its final value; a visit whose source
//!   max is `> W_e` is *suspended* (parked on a side list, replayed after
//!   the merge fixes land) rather than issued against stale state. The
//!   replayed visit always re-queues (`e > W_e ≥ t`) and touches only
//!   stream-private state, so its deferral commutes with every other
//!   event.
//! * **Provisional completions.** A `fetch_add`'s completion depends on
//!   hotspot serialization only the merge can order, so its ready time and
//!   lookahead-ring entry carry the lower bound `issue_at + latency` until
//!   the merge fix rewrites them (ring slots are addressed absolutely, so
//!   the fix lands even after pops). A forced lookahead pop that would
//!   consume a provisional ring entry suspends instead. Wheel pushes made
//!   from provisional wake hints are lower bounds: the early pop recomputes
//!   `e` from fixed values and re-queues, changing host-side event counts
//!   but no simulated quantity.
//! * **Overwrite guard.** A later in-window write may clobber a register
//!   still awaiting its merge fix (plain WAR over an in-flight load /
//!   `fetch_add` destination). Each pending fix carries a per-register
//!   sequence number; any intervening register write retires the number,
//!   so a stale fix is dropped exactly when the single-step engine's write
//!   order would have buried it. Trace batching is gated off while a
//!   stream has a pending fix (batch extent is host-side policy — PR 2's
//!   schedule-preservation lemma makes any horizon-respecting split,
//!   including "no batch", issue at identical times).
//! * **Batch horizon.** In-window batches use the *local* wheel front
//!   capped at `W_e`: same-processor streams are always co-partitioned, so
//!   the local front is the exact same-processor constraint; other
//!   partitions' events commute with private ops (the same cross-processor
//!   argument the shared-wheel engines already rely on); and the `W_e` cap
//!   keeps every batched slot inside the window where readiness implies
//!   finality.
//!
//! Full/empty-bit synchronization (`ReadFE`/`WriteEF`/`ReadFF`) is *not*
//! windowable: a retry's outcome depends on globally ordered tag state
//! that a conservative horizon cannot resolve in parallel. Programs
//! containing sync ops take the batched interpreter path in
//! `MtaMachine::run` instead (bit-identical by the trace engine's proof);
//! the arms below are unreachable.
//!
//! Worker count never affects simulated quantities — `W = 1` runs the same
//! windowed loop without threads, and the differential suite pins `W ∈
//! {1, 2, 4, 8}` against the single-step oracle.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use archgraph_core::error::SimError;

use crate::compiled::RegionOut;
use crate::fault::FaultPlan;
use crate::isa::{Instr, Program, NREGS, N_OP_CLASSES};
use crate::machine::{batch_limit, decode, try_batch, Decoded, Stream, WordFree};
use crate::memory::Memory;
use crate::report::EngineStats;
use crate::wheel::TimeWheel;

/// "No pending memory fix" sentinel in the per-register sequence table.
const NONE_FIX: u32 = u32::MAX;

/// Read-only per-region context shared by every partition.
struct Env<'a> {
    instrs: &'a [Instr],
    decoded: &'a [Decoded],
    streams_per_proc: usize,
    latency: u64,
    lookahead: usize,
    /// Watchdog boundary in thirds: no partition pops or batches an issue
    /// slot past it, so every engine simulates exactly the same prefix
    /// before [`SimError::CycleBudgetExceeded`] fires at the merge.
    budget_thirds: u64,
    /// Copy of the memory image's fault plan. Workers never touch
    /// [`Memory`], yet completion times must carry injected latency;
    /// every fault decision is a pure function of `(addr, seed)`, so a
    /// worker-local copy perturbs identically to the merge's own image.
    fault: Option<FaultPlan>,
}

impl Env<'_> {
    #[inline]
    fn extra_latency(&self, addr: usize) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.extra_latency(addr))
    }
}

/// A shared-memory operation logged in-window, applied at the merge.
struct MemOp {
    /// Pop key (equals the issue check's `e`): the merge sort key.
    t: u64,
    /// Global stream id: the merge tie-break.
    id: u32,
    /// Pending-fix sequence number (guards destination-register fix-up).
    fid: u32,
    issue_at: u64,
    addr: usize,
    kind: MemKind,
}

enum MemKind {
    Load { dst: u8 },
    Store { val: i64 },
    FetchAdd { delta: i64, dst: u8, slot: u8 },
}

/// Merge-phase result handed back to the owning partition: the value (and,
/// for `fetch_add`, the hotspot-serialized completion time) a logged
/// operation resolved to.
enum Fix {
    LoadVal {
        local: u32,
        fid: u32,
        dst: u8,
        val: i64,
    },
    FetchAdd {
        local: u32,
        fid: u32,
        dst: u8,
        slot: u8,
        val: i64,
        done: u64,
    },
}

/// Per-partition mailbox: the worker deposits its window log and next
/// pending-event time; the merger deposits fixes. Locked once per phase
/// per side, so the mutex is uncontended by construction.
#[derive(Default)]
struct Mailbox {
    log: Vec<MemOp>,
    fixes: Vec<Fix>,
    next_event: u64,
}

/// Sense-reversing spin barrier. Two crossings per window over at most a
/// few dozen participants; spinning (with a yield fallback) beats a
/// mutex/condvar round-trip at the window rates the bench cells hit.
/// When the host cannot actually run all participants at once
/// (oversubscription), spinning only steals the quantum the straggler
/// needs, so the spin budget drops to zero and waiters yield immediately.
struct SpinBarrier {
    n: usize,
    spin_budget: u32,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        let oversubscribed = std::thread::available_parallelism()
            .map(|c| c.get() < n)
            .unwrap_or(true);
        SpinBarrier {
            n,
            spin_budget: if oversubscribed { 0 } else { 1 << 14 },
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            if spins < self.spin_budget {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Coordination state shared by the main thread and the workers.
struct Shared {
    barrier: SpinBarrier,
    /// End (exclusive, in thirds) of the window being executed.
    window_end: AtomicU64,
    done: AtomicBool,
    boxes: Vec<Mutex<Mailbox>>,
}

/// One worker partition: a contiguous processor range with its private
/// wheel, plus the bookkeeping the window/merge protocol needs.
struct Partition<'a> {
    streams: &'a mut [Stream],
    proc_clock: &'a mut [u64],
    /// Global id of this partition's first stream.
    stream_lo: usize,
    /// Global index of this partition's first processor.
    proc_lo: usize,
    wheel: TimeWheel,
    /// Provisional-completion bitmask over each stream's lookahead ring
    /// (absolute slots): set on `fetch_add` push, cleared by its fix.
    prov: Vec<u16>,
    /// Pending-fix sequence per register, [`NONE_FIX`] when none.
    seq: Vec<[u32; NREGS]>,
    /// Count of registers with a pending fix (gates trace batching).
    cnt: Vec<u32>,
    /// Suspended visits `(t, id)`, replayed after the next merge.
    side: Vec<(u64, u32)>,
    log: Vec<MemOp>,
    fix_seq: u32,
    issued: u64,
    issued_thirds: u64,
    op_mix: [u64; N_OP_CLASSES],
    stats: EngineStats,
}

impl Partition<'_> {
    /// Apply the previous window's merge fixes. Runs before anything else
    /// in a phase, so every provisional value is final before execution.
    fn apply_fixes(&mut self, fixes: &mut Vec<Fix>) {
        for f in fixes.drain(..) {
            match f {
                Fix::LoadVal {
                    local,
                    fid,
                    dst,
                    val,
                } => {
                    let li = local as usize;
                    let di = dst as usize;
                    if self.seq[li][di] == fid {
                        self.seq[li][di] = NONE_FIX;
                        self.cnt[li] -= 1;
                        self.streams[li].regs[di] = val;
                    }
                }
                Fix::FetchAdd {
                    local,
                    fid,
                    dst,
                    slot,
                    val,
                    done,
                } => {
                    let li = local as usize;
                    let s = &mut self.streams[li];
                    s.out_set_slot(slot as usize, done);
                    self.prov[li] &= !(1u16 << slot);
                    let di = dst as usize;
                    if di != 0 && self.seq[li][di] == fid {
                        self.seq[li][di] = NONE_FIX;
                        self.cnt[li] -= 1;
                        s.regs[di] = val;
                        s.reg_ready[di] = done;
                    }
                }
            }
        }
    }

    /// Replay visits suspended in the previous window. All register and
    /// ring state is final by now, so this performs exactly the pop-time
    /// work the single-step engine would have: recompute `e`, drain the
    /// lookahead ring, take the forced pop if the ring is full, and
    /// re-queue (a suspended visit always has `e > t`, so it never issues
    /// here). All of it is stream-private, so doing it after other
    /// partitions' higher-keyed events is a pure commutation.
    fn replay_suspended(&mut self, env: &Env) {
        if self.side.is_empty() {
            return;
        }
        let side = std::mem::take(&mut self.side);
        for (t, id) in side {
            let li = id as usize - self.stream_lo;
            let s = &mut self.streams[li];
            let d = env.decoded[s.pc];
            let mut e = t
                .max(s.reg_ready[d.src0 as usize])
                .max(s.reg_ready[d.src1 as usize]);
            while let Some(c) = s.out_front() {
                if c <= e {
                    s.out_pop();
                } else {
                    break;
                }
            }
            if d.is_memory && s.out_len as usize >= env.lookahead {
                debug_assert_eq!(self.prov[li], 0, "fixes must precede replay");
                // The window is at its limit, so the ring holds
                // `lookahead ≥ 1` entries and the front exists.
                let c = s
                    .out_front()
                    .expect("outstanding ring at the lookahead limit is non-empty");
                e = e.max(c);
                s.out_pop();
            }
            debug_assert!(e > t, "suspended visits re-queue past the window");
            self.wheel.push(e, id);
        }
    }

    /// Earliest pending event after a window: the wheel front, or — if
    /// suspended visits are still awaiting fixes — the just-finished
    /// window end as a conservative stand-in (their re-queue times are
    /// provably beyond it).
    fn next_event(&mut self, we: u64) -> u64 {
        let w = self.wheel.peek().map_or(u64::MAX, |(t, _)| t);
        if self.side.is_empty() {
            w
        } else {
            w.min(we)
        }
    }

    /// The issue loop over one bounded window `[.., we)` — line-for-line
    /// the single-step loop in `machine.rs`, except that shared-memory
    /// effects are logged for the merge and visits that would touch
    /// non-final state are suspended.
    fn run_window(&mut self, we: u64, env: &Env) {
        // Clamp the pop range (not the window bookkeeping: suspension and
        // finality reason about the true `we`) so no event past the
        // watchdog boundary executes; the merge then reports the budget
        // error off the untouched pending-event times.
        let pop_we = we.min(env.budget_thirds.saturating_add(1));
        while let Some((t, id)) = self.wheel.pop_before(pop_we) {
            self.stats.events += 1;
            let li = id as usize - self.stream_lo;
            let proc = id as usize / env.streams_per_proc;
            let pi = proc - self.proc_lo;
            let s = &mut self.streams[li];
            debug_assert!(!s.halted);
            if s.pc >= env.instrs.len() {
                s.halted = true;
                continue;
            }
            let instr = env.instrs[s.pc];
            let d = env.decoded[s.pc];

            let rmax = s.reg_ready[d.src0 as usize].max(s.reg_ready[d.src1 as usize]);
            if rmax > we {
                // A source is still in flight past the window — possibly a
                // provisional lower bound. Park the visit; the replay after
                // the merge sees final values.
                self.side.push((t, id));
                continue;
            }
            let mut e = t.max(rmax);
            while let Some(c) = s.out_front() {
                // Ring entries ≤ e ≤ we are final (provisional ones are
                // > we by construction), so this drain is exact.
                if c <= e {
                    s.out_pop();
                } else {
                    break;
                }
            }
            if d.is_memory && s.out_len as usize >= env.lookahead {
                if self.prov[li] & (1u16 << s.out_front_slot()) != 0 {
                    // The forced pop would consume a provisional
                    // completion; its final time arrives with the merge.
                    self.side.push((t, id));
                    continue;
                }
                // The window is at its limit, so the ring holds
                // `lookahead ≥ 1` entries and the front exists.
                let c = s
                    .out_front()
                    .expect("outstanding ring at the lookahead limit is non-empty");
                e = e.max(c);
                s.out_pop();
            }
            if e > t {
                self.wheel.push(e, id);
                continue;
            }
            let issue_at = e.max(self.proc_clock[pi]);

            if d.batchable && self.cnt[li] == 0 {
                // Local front is the exact same-processor horizon (whole
                // processors per partition); the `we` cap keeps batched
                // slots where readiness implies finality. Batching is
                // skipped while a register fix is pending so no batched
                // write can bury one unnoticed.
                let limit = batch_limit(&mut self.wheel, id)
                    .min(we)
                    .min(env.budget_thirds.saturating_add(1));
                if let Some(done) = try_batch(
                    limit,
                    s,
                    env.instrs,
                    env.decoded,
                    d,
                    issue_at,
                    &mut self.op_mix,
                ) {
                    self.proc_clock[pi] = done.clock;
                    self.issued += done.n_exec;
                    self.issued_thirds += done.n_exec;
                    if done.n_exec >= 2 {
                        self.stats.batches += 1;
                        self.stats.batched_instrs += done.n_exec;
                    }
                    if done.halted {
                        s.halted = true;
                        continue;
                    }
                    let dn = env.decoded[s.pc];
                    let wake = done
                        .clock
                        .max(s.reg_ready[dn.src0 as usize])
                        .max(s.reg_ready[dn.src1 as usize]);
                    self.wheel.push(wake, id);
                    continue;
                }
            }

            let cost = u64::from(d.cost);
            self.proc_clock[pi] = issue_at + cost;
            self.issued += 1;
            self.issued_thirds += cost;
            self.op_mix[d.class_idx as usize] += 1;
            let next_ready = issue_at + cost;
            let mut next_pc = s.pc + 1;

            macro_rules! wreg {
                ($dst:expr, $val:expr, $ready:expr) => {{
                    let di = $dst.0 as usize;
                    if di != 0 {
                        s.regs[di] = $val;
                        s.reg_ready[di] = $ready;
                        if self.seq[li][di] != NONE_FIX {
                            // This write buries a pending memory fix: the
                            // single-step engine's later write wins there
                            // too, so retire the fix.
                            self.seq[li][di] = NONE_FIX;
                            self.cnt[li] -= 1;
                        }
                    }
                }};
            }

            match instr {
                Instr::Li { dst, imm } => wreg!(dst, imm, issue_at + 1),
                Instr::Mov { dst, src } => {
                    wreg!(dst, s.regs[src.0 as usize], issue_at + 1)
                }
                Instr::Add { dst, a, b } => {
                    let v = s.regs[a.0 as usize].wrapping_add(s.regs[b.0 as usize]);
                    wreg!(dst, v, issue_at + 1)
                }
                Instr::AddI { dst, a, imm } => {
                    let v = s.regs[a.0 as usize].wrapping_add(imm);
                    wreg!(dst, v, issue_at + 1)
                }
                Instr::Sub { dst, a, b } => {
                    let v = s.regs[a.0 as usize].wrapping_sub(s.regs[b.0 as usize]);
                    wreg!(dst, v, issue_at + 1)
                }
                Instr::Mul { dst, a, b } => {
                    let v = s.regs[a.0 as usize].wrapping_mul(s.regs[b.0 as usize]);
                    wreg!(dst, v, issue_at + 1)
                }
                Instr::Load { dst, addr, off } => {
                    let a = (s.regs[addr.0 as usize] + off) as usize;
                    let done = issue_at + env.latency + env.extra_latency(a);
                    let fid = self.fix_seq;
                    self.fix_seq += 1;
                    let di = dst.0 as usize;
                    if di != 0 {
                        // Ready time is final; the value lands with the
                        // merge fix. Readers gate on the ready time, so
                        // the stale `regs` word is unreachable meanwhile.
                        s.reg_ready[di] = done;
                        if self.seq[li][di] == NONE_FIX {
                            self.cnt[li] += 1;
                        }
                        self.seq[li][di] = fid;
                    }
                    self.log.push(MemOp {
                        t,
                        id,
                        fid,
                        issue_at,
                        addr: a,
                        kind: MemKind::Load { dst: dst.0 },
                    });
                    s.out_push(done);
                }
                Instr::Store { src, addr, off } => {
                    let a = (s.regs[addr.0 as usize] + off) as usize;
                    self.log.push(MemOp {
                        t,
                        id,
                        fid: NONE_FIX,
                        issue_at,
                        addr: a,
                        kind: MemKind::Store {
                            val: s.regs[src.0 as usize],
                        },
                    });
                    s.out_push(issue_at + env.latency + env.extra_latency(a));
                }
                Instr::FetchAdd {
                    dst,
                    addr,
                    off,
                    delta,
                } => {
                    let a = (s.regs[addr.0 as usize] + off) as usize;
                    // Lower bound on the completion; the merge serializes
                    // the word hotspot and rewrites ready/ring with the
                    // true `service + latency` (injected latency only
                    // adds, so the bound survives fault plans too).
                    let done_lb = issue_at + env.latency + env.extra_latency(a);
                    let slot = s.out_next_slot();
                    let fid = self.fix_seq;
                    self.fix_seq += 1;
                    let di = dst.0 as usize;
                    if di != 0 {
                        s.reg_ready[di] = done_lb;
                        if self.seq[li][di] == NONE_FIX {
                            self.cnt[li] += 1;
                        }
                        self.seq[li][di] = fid;
                    }
                    self.prov[li] |= 1u16 << slot;
                    self.log.push(MemOp {
                        t,
                        id,
                        fid,
                        issue_at,
                        addr: a,
                        kind: MemKind::FetchAdd {
                            delta: s.regs[delta.0 as usize],
                            dst: dst.0,
                            slot: slot as u8,
                        },
                    });
                    s.out_push(done_lb);
                }
                Instr::ReadFE { .. } | Instr::WriteEF { .. } | Instr::ReadFF { .. } => {
                    unreachable!("sync programs take the interpreter path")
                }
                Instr::Beq { a, b, target } => {
                    if s.regs[a.0 as usize] == s.regs[b.0 as usize] {
                        next_pc = target;
                    }
                }
                Instr::Bne { a, b, target } => {
                    if s.regs[a.0 as usize] != s.regs[b.0 as usize] {
                        next_pc = target;
                    }
                }
                Instr::Blt { a, b, target } => {
                    if s.regs[a.0 as usize] < s.regs[b.0 as usize] {
                        next_pc = target;
                    }
                }
                Instr::Bge { a, b, target } => {
                    if s.regs[a.0 as usize] >= s.regs[b.0 as usize] {
                        next_pc = target;
                    }
                }
                Instr::Jmp { target } => next_pc = target,
                Instr::Halt => {
                    s.halted = true;
                    continue;
                }
            }

            s.pc = next_pc;
            if s.pc >= env.instrs.len() {
                s.halted = true;
                continue;
            }
            let dn = env.decoded[s.pc];
            let wake = next_ready
                .max(s.reg_ready[dn.src0 as usize])
                .max(s.reg_ready[dn.src1 as usize]);
            self.wheel.push(wake, id);
        }
    }
}

/// One worker's lifetime: fences at the barrier, runs its partition's
/// phase, deposits the window log, and fences again while the main thread
/// merges.
fn worker_loop(part: &mut Partition, k: usize, shared: &Shared, env: &Env) {
    let mut fixes: Vec<Fix> = Vec::new();
    loop {
        shared.barrier.wait();
        if shared.done.load(Ordering::Acquire) {
            break;
        }
        let we = shared.window_end.load(Ordering::Acquire);
        {
            let mut mb = shared.boxes[k].lock().unwrap();
            std::mem::swap(&mut fixes, &mut mb.fixes);
        }
        part.apply_fixes(&mut fixes);
        part.replay_suspended(env);
        part.run_window(we, env);
        {
            let mut mb = shared.boxes[k].lock().unwrap();
            std::mem::swap(&mut mb.log, &mut part.log);
            mb.next_event = part.next_event(we);
        }
        shared.barrier.wait();
    }
}

/// Serially apply one window's logs in global `(t, id)` order (a k-way
/// merge over the per-partition logs, each already locally ascending),
/// producing per-partition fixes.
#[allow(clippy::too_many_arguments)]
fn merge_apply(
    logs: &[Vec<MemOp>],
    stream_lo: &[usize],
    memory: &mut Memory,
    word_free: &mut WordFree,
    latency: u64,
    last_completion: &mut u64,
    idx: &mut [usize],
    fixes: &mut [Vec<Fix>],
) {
    idx.fill(0);
    loop {
        let mut best: Option<((u64, u32), usize)> = None;
        for (k, log) in logs.iter().enumerate() {
            if let Some(op) = log.get(idx[k]) {
                let key = (op.t, op.id);
                if best.is_none_or(|(bk, _)| key < bk) {
                    best = Some((key, k));
                }
            }
        }
        let Some((_, k)) = best else { break };
        let op = &logs[k][idx[k]];
        idx[k] += 1;
        let local = (op.id as usize - stream_lo[k]) as u32;
        match op.kind {
            MemKind::Load { dst } => {
                let v = memory.load(op.addr);
                let done = op.issue_at + latency + memory.fault_extra_latency(op.addr);
                *last_completion = (*last_completion).max(done);
                if dst != 0 {
                    fixes[k].push(Fix::LoadVal {
                        local,
                        fid: op.fid,
                        dst,
                        val: v,
                    });
                }
            }
            MemKind::Store { val } => {
                memory.store(op.addr, val);
                let done = op.issue_at + latency + memory.fault_extra_latency(op.addr);
                *last_completion = (*last_completion).max(done);
            }
            MemKind::FetchAdd { delta, dst, slot } => {
                let old = memory.int_fetch_add(op.addr, delta);
                let wf = word_free.slot(op.addr);
                let service = (*wf).max(op.issue_at);
                *wf = service + 3;
                let done = service + latency + memory.fault_extra_latency(op.addr);
                *last_completion = (*last_completion).max(done);
                fixes[k].push(Fix::FetchAdd {
                    local,
                    fid: op.fid,
                    dst,
                    slot,
                    val: old,
                    done,
                });
            }
        }
    }
}

/// Execute one region under the partitioned engine. Same contract as the
/// other engines' region runners: every simulated quantity (issue order,
/// clocks, counters, memory image) is bit-identical to the single-step
/// oracle for any `workers`, including 1.
///
/// Guardrails: only the cycle watchdog can fire here — sync programs
/// (the only ones that can deadlock) never reach this engine. Workers
/// stop popping at the budget boundary, and the merge converts "every
/// pending event lies past the budget" into
/// [`SimError::CycleBudgetExceeded`]. (`spent` reads the merged
/// next-event time, which for a pending provisional completion is its
/// lower bound — always past the budget, though it may name an earlier
/// cycle than the single-wheel engines report for the same runaway.)
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_region(
    prog: &Program,
    memory: &mut Memory,
    streams: &mut [Stream],
    proc_clock: &mut [u64],
    streams_per_proc: usize,
    latency: u64,
    lookahead: usize,
    workers: usize,
    max_cycles: u64,
) -> Result<RegionOut, SimError> {
    let budget_thirds = max_cycles.saturating_mul(3);
    let total = streams.len();
    let p = proc_clock.len();
    let w_eff = workers.clamp(1, p);
    // Window width Δ = latency − 1: an in-window memory operation issues at
    // ≥ the window start T, so it completes at ≥ T + latency = W_e + 1,
    // strictly beyond the window — which is what makes "ready time ≤ W_e"
    // imply "value is final". (The dispatcher guarantees latency ≥ 3.)
    debug_assert!(latency >= 2);
    let delta = latency.saturating_sub(1).max(1);
    let decoded = decode(prog, true);
    let env = Env {
        instrs: prog.instrs(),
        decoded: &decoded,
        streams_per_proc,
        latency,
        lookahead,
        budget_thirds,
        fault: memory.fault_plan().cloned(),
    };

    // Carve contiguous whole-processor partitions.
    let mut parts: Vec<Partition> = Vec::with_capacity(w_eff);
    let mut stream_lo_tab: Vec<usize> = Vec::with_capacity(w_eff);
    {
        let mut srest = streams;
        let mut crest = proc_clock;
        let mut proc_lo = 0usize;
        for k in 0..w_eff {
            let nproc = p / w_eff + usize::from(k < p % w_eff);
            let (sa, srest2) = srest.split_at_mut(nproc * streams_per_proc);
            let (ca, crest2) = crest.split_at_mut(nproc);
            srest = srest2;
            crest = crest2;
            let stream_lo = proc_lo * streams_per_proc;
            stream_lo_tab.push(stream_lo);
            let mut wheel = TimeWheel::new(total);
            for i in 0..sa.len() {
                wheel.push(0, (stream_lo + i) as u32);
            }
            let n = sa.len();
            parts.push(Partition {
                streams: sa,
                proc_clock: ca,
                stream_lo,
                proc_lo,
                wheel,
                prov: vec![0u16; n],
                seq: vec![[NONE_FIX; NREGS]; n],
                cnt: vec![0u32; n],
                side: Vec::new(),
                log: Vec::new(),
                fix_seq: 0,
                issued: 0,
                issued_thirds: 0,
                op_mix: [0u64; N_OP_CLASSES],
                stats: EngineStats::default(),
            });
            proc_lo += nproc;
        }
    }

    let shared = Shared {
        barrier: SpinBarrier::new(w_eff),
        window_end: AtomicU64::new(delta),
        done: AtomicBool::new(false),
        boxes: (0..w_eff).map(|_| Mutex::new(Mailbox::default())).collect(),
    };

    let mut last_completion = 0u64;
    let mut err: Option<SimError> = None;
    {
        let (head, rest) = parts.split_at_mut(1);
        let p0 = &mut head[0];
        std::thread::scope(|scope| {
            for (i, part) in rest.iter_mut().enumerate() {
                let shared = &shared;
                let env = &env;
                scope.spawn(move || worker_loop(part, i + 1, shared, env));
            }
            // Main thread: partition 0's worker phase plus the serial merge.
            let mut word_free = WordFree::new();
            let mut fixes0: Vec<Fix> = Vec::new();
            let mut logs: Vec<Vec<MemOp>> = (0..w_eff).map(|_| Vec::new()).collect();
            let mut fixes: Vec<Vec<Fix>> = (0..w_eff).map(|_| Vec::new()).collect();
            let mut idx = vec![0usize; w_eff];
            loop {
                shared.barrier.wait();
                if shared.done.load(Ordering::Acquire) {
                    break;
                }
                let we = shared.window_end.load(Ordering::Acquire);
                {
                    let mut mb = shared.boxes[0].lock().unwrap();
                    std::mem::swap(&mut fixes0, &mut mb.fixes);
                }
                p0.apply_fixes(&mut fixes0);
                p0.replay_suspended(&env);
                p0.run_window(we, &env);
                {
                    let mut mb = shared.boxes[0].lock().unwrap();
                    std::mem::swap(&mut mb.log, &mut p0.log);
                    mb.next_event = p0.next_event(we);
                }
                shared.barrier.wait();

                let mut t_next = u64::MAX;
                for (k, bx) in shared.boxes.iter().enumerate() {
                    let mut mb = bx.lock().unwrap();
                    std::mem::swap(&mut logs[k], &mut mb.log);
                    t_next = t_next.min(mb.next_event);
                }
                merge_apply(
                    &logs,
                    &stream_lo_tab,
                    memory,
                    &mut word_free,
                    latency,
                    &mut last_completion,
                    &mut idx,
                    &mut fixes,
                );
                for (k, bx) in shared.boxes.iter().enumerate() {
                    logs[k].clear();
                    if !fixes[k].is_empty() {
                        let mut mb = bx.lock().unwrap();
                        std::mem::swap(&mut mb.fixes, &mut fixes[k]);
                    }
                }
                if t_next == u64::MAX {
                    shared.done.store(true, Ordering::Release);
                } else if t_next > budget_thirds {
                    // Every pending event everywhere lies past the
                    // watchdog boundary; the region can only burn budget
                    // from here. Tear down through the normal done
                    // handshake so the workers exit cleanly.
                    err = Some(SimError::CycleBudgetExceeded {
                        budget: max_cycles,
                        spent: t_next.div_ceil(3),
                        what: "mta cycles",
                    });
                    shared.done.store(true, Ordering::Release);
                } else {
                    shared
                        .window_end
                        .store(t_next.saturating_add(delta), Ordering::Release);
                }
            }
        });
    }

    if let Some(e) = err {
        return Err(e);
    }

    let mut out = RegionOut {
        issued: 0,
        issued_thirds: 0,
        op_mix: [0u64; N_OP_CLASSES],
        last_completion,
        stats: EngineStats::default(),
    };
    for part in &parts {
        out.issued += part.issued;
        out.issued_thirds += part.issued_thirds;
        for (acc, v) in out.op_mix.iter_mut().zip(part.op_mix.iter()) {
            *acc += v;
        }
        out.stats.events += part.stats.events;
        out.stats.batches += part.stats.batches;
        out.stats.batched_instrs += part.stats.batched_instrs;
    }
    Ok(out)
}
