//! Run reports: cycles, issue counts, and utilization.

use crate::isa::{OpClass, N_OP_CLASSES};
use crate::memory::MemCounters;

/// The outcome of one parallel region executed on the simulated MTA.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Region duration in cycles (max over processors, including the
    /// drain of in-flight memory operations).
    pub cycles: u64,
    /// Instructions issued across all processors.
    pub issued: u64,
    /// Issue-slot thirds consumed (memory ops fill 3, others 1) — the
    /// numerator of [`RunReport::utilization`].
    pub issued_thirds: u64,
    /// Instruction-mix histogram indexed by [`OpClass::index`].
    pub op_mix: [u64; N_OP_CLASSES],
    /// Processors used.
    pub processors: usize,
    /// Streams per processor used.
    pub streams_per_processor: usize,
    /// Issue-slot utilization: `issued / (cycles × processors)` — the
    /// quantity reported in the paper's Table 1.
    pub utilization: f64,
    /// Memory traffic during the region.
    pub mem: MemCounters,
    /// Synchronous-operation retries observed (bounced FEB ops).
    pub sync_retries: u64,
    /// Region duration in seconds at the configured clock.
    pub seconds: f64,
}

impl RunReport {
    /// Count of issued operations in a class.
    pub fn ops(&self, class: OpClass) -> u64 {
        self.op_mix[class.index()]
    }

    /// A one-line instruction-mix summary ("alu 40% load 35% ...").
    pub fn mix_summary(&self) -> String {
        let total = self.issued.max(1) as f64;
        OpClass::all()
            .iter()
            .filter(|c| self.op_mix[c.index()] > 0)
            .map(|c| {
                format!(
                    "{} {:.0}%",
                    c.label(),
                    self.op_mix[c.index()] as f64 / total * 100.0
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Operations per cycle across the whole machine (≤ 3 × processors,
    /// since each processor issues one three-wide LIW instruction per
    /// cycle).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }
}

/// Issue-loop accounting: how the engine spent its scheduler visits.
///
/// This is *host-side* measurement of the interpreter itself — instruction
/// vs. trace bookkeeping — and is deliberately not part of [`RunReport`]:
/// the simulated schedule is engine-invariant (trace-batched and
/// single-step runs produce bit-identical reports), while these counters
/// differ between engines by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Scheduler visits (events popped), including stall re-queues.
    pub events: u64,
    /// Trace batches executed (each covers ≥ 2 private ops in one visit;
    /// a visit whose batch attempt covers a single instruction is counted
    /// as an ordinary single-step event, which it is equivalent to).
    pub batches: u64,
    /// Instructions issued inside trace batches.
    pub batched_instrs: u64,
    /// Window-merge rounds executed by the partitioned engine. Zero on
    /// every other engine, so tests can assert a region really ran on
    /// the partitioned path (there is no interpreter fallback left for
    /// sync programs; any region the partitioned engine runs reports at
    /// least one round).
    pub windows: u64,
}

impl EngineStats {
    /// Fraction of `issued` instructions that went through trace batches
    /// (0 under the single-step oracle).
    pub fn batched_fraction(&self, issued: u64) -> f64 {
        if issued == 0 {
            0.0
        } else {
            self.batched_instrs as f64 / issued as f64
        }
    }
}

/// Sum of several region reports (for whole-algorithm accounting).
pub fn combine(reports: &[RunReport]) -> RunReport {
    assert!(!reports.is_empty(), "cannot combine zero reports");
    let processors = reports[0].processors;
    let streams = reports[0].streams_per_processor;
    let cycles: u64 = reports.iter().map(|r| r.cycles).sum();
    let issued: u64 = reports.iter().map(|r| r.issued).sum();
    let issued_thirds: u64 = reports.iter().map(|r| r.issued_thirds).sum();
    let mut op_mix = [0u64; N_OP_CLASSES];
    for r in reports {
        for (k, v) in r.op_mix.iter().enumerate() {
            op_mix[k] += v;
        }
    }
    let seconds: f64 = reports.iter().map(|r| r.seconds).sum();
    let sync_retries: u64 = reports.iter().map(|r| r.sync_retries).sum();
    let mut mem = MemCounters::default();
    for r in reports {
        mem.loads += r.mem.loads;
        mem.stores += r.mem.stores;
        mem.sync_ops += r.mem.sync_ops;
        mem.sync_retries += r.mem.sync_retries;
        mem.fetch_adds += r.mem.fetch_adds;
    }
    let utilization = if cycles == 0 {
        0.0
    } else {
        issued_thirds as f64 / (3.0 * cycles as f64 * processors as f64)
    };
    RunReport {
        cycles,
        issued,
        issued_thirds,
        op_mix,
        processors,
        streams_per_processor: streams,
        utilization,
        mem,
        sync_retries,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(cycles: u64, issued: u64, p: usize) -> RunReport {
        RunReport {
            cycles,
            issued,
            issued_thirds: 3 * issued,
            op_mix: [0; N_OP_CLASSES],
            processors: p,
            streams_per_processor: 8,
            utilization: issued as f64 / (cycles as f64 * p as f64),
            mem: MemCounters::default(),
            sync_retries: 0,
            seconds: cycles as f64 * 1e-8,
        }
    }

    #[test]
    fn ipc_and_utilization() {
        let rep = r(100, 150, 2);
        assert!((rep.ipc() - 1.5).abs() < 1e-12);
        assert!((rep.utilization - 0.75).abs() < 1e-12);
    }

    #[test]
    fn combine_sums_and_reweights() {
        let a = r(100, 100, 2);
        let b = r(300, 60, 2);
        let c = combine(&[a, b]);
        assert_eq!(c.cycles, 400);
        assert_eq!(c.issued, 160);
        assert!((c.utilization - 160.0 / 800.0).abs() < 1e-12);
        assert!((c.seconds - 4e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero reports")]
    fn combine_empty_panics() {
        combine(&[]);
    }

    #[test]
    fn zero_cycles_guarded() {
        let rep = RunReport {
            cycles: 0,
            issued: 0,
            issued_thirds: 0,
            op_mix: [0; N_OP_CLASSES],
            processors: 1,
            streams_per_processor: 1,
            utilization: 0.0,
            mem: MemCounters::default(),
            sync_retries: 0,
            seconds: 0.0,
        };
        assert_eq!(rep.ipc(), 0.0);
    }
}
