//! Synchronization primitives built from full/empty bits and
//! `int_fetch_add` — the "near zero-cost synchronization mechanism"
//! (§2.2) that makes fine-grain parallelism viable on the MTA.
//!
//! Each primitive is an *emitter*: it appends the operation sequence to a
//! [`ProgramBuilder`], exactly as the MTA compiler would inline its
//! intrinsics. Provided:
//!
//! * [`emit_lock`] / [`emit_unlock`] — a mutex from `readfe`/`writeef` on
//!   a lock word (full = free).
//! * [`emit_critical_add`] — read-modify-write of an arbitrary shared
//!   word under its own full/empty bit (the idiom for updates that
//!   `int_fetch_add` cannot express).
//! * [`emit_barrier`] — a sense-reversing centralized barrier:
//!   `int_fetch_add` on an arrival counter plus a spin on a generation
//!   word. This is the "hotspot" §2.2 warns about; the simulator lets
//!   you measure exactly how much it costs.
//! * [`emit_reduce_add`] — per-stream partial values combined by
//!   `int_fetch_add` into a global cell.
//!
//! Every operation these emitters produce (`readfe`/`writeef`/
//! `int_fetch_add`) is a trace terminator for the batched engine
//! ([`crate::isa::TraceTable`]): synchronization points are exactly where
//! cross-stream ordering matters, so the engine always single-steps them.

use crate::isa::{ProgramBuilder, Reg};

/// Acquire the mutex at `lock_addr`: `readfe` empties the word, blocking
/// (retrying) while another holder keeps it empty. The word must start
/// *full* (any value).
pub fn emit_lock(b: &mut ProgramBuilder, lock_addr: usize, scratch: Reg) {
    b.readfe(scratch, Reg(0), lock_addr as i64);
}

/// Release the mutex: `writeef` refills the word, unblocking one waiter.
pub fn emit_unlock(b: &mut ProgramBuilder, lock_addr: usize, scratch: Reg) {
    b.writeef(scratch, Reg(0), lock_addr as i64);
}

/// Atomically add `delta_reg` to the shared word at `addr` using its
/// full/empty bit: `readfe` takes exclusive ownership, `writeef` returns
/// it. `tmp` is clobbered with the updated value.
pub fn emit_critical_add(b: &mut ProgramBuilder, addr: usize, delta_reg: Reg, tmp: Reg) {
    b.readfe(tmp, Reg(0), addr as i64);
    b.add(tmp, tmp, delta_reg);
    b.writeef(tmp, Reg(0), addr as i64);
}

/// A centralized sense-reversing barrier for `total_streams` streams.
///
/// Layout: `counter_addr` (arrival count, starts 0) and `gen_addr`
/// (generation number, starts 0). The last arrival resets the counter
/// and bumps the generation; everyone else spins on the generation word
/// with ordinary loads. Registers `r_old_gen`, `r_tmp`, `r_one` and
/// `r_total` are clobbered (`r_total` holds the stream count after
/// emission).
#[allow(clippy::too_many_arguments)]
pub fn emit_barrier(
    b: &mut ProgramBuilder,
    counter_addr: usize,
    gen_addr: usize,
    total_streams: i64,
    r_old_gen: Reg,
    r_tmp: Reg,
    r_one: Reg,
    r_total: Reg,
) {
    b.li(r_one, 1);
    b.li(r_total, total_streams);
    b.load_abs(r_old_gen, gen_addr);
    b.fetch_add_imm(r_tmp, counter_addr as i64, r_one);
    b.addi(r_tmp, r_tmp, 1);
    let not_last = b.blt_fwd(r_tmp, r_total);
    // Last arrival: reset the counter, bump the generation.
    b.li(r_tmp, 0);
    b.store_abs(r_tmp, counter_addr);
    b.addi(r_tmp, r_old_gen, 1);
    b.store_abs(r_tmp, gen_addr);
    let done = b.jmp_fwd();
    // Spin until the generation changes.
    b.bind(not_last);
    let spin = b.here();
    b.load_abs(r_tmp, gen_addr);
    b.beq(r_tmp, r_old_gen, spin);
    b.bind(done);
}

/// Reduce per-stream values into `acc_addr` by `int_fetch_add`; the old
/// total lands in `r_scratch`.
pub fn emit_reduce_add(b: &mut ProgramBuilder, acc_addr: usize, value: Reg, r_scratch: Reg) {
    b.fetch_add_imm(r_scratch, acc_addr as i64, value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MtaMachine;
    use archgraph_core::MtaParams;

    fn tiny(p: usize) -> MtaMachine {
        MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), p, 1 << 14)
    }

    #[test]
    fn lock_serializes_read_modify_write() {
        // 8 streams each add 1 to a shared cell 25 times under the lock;
        // the plain load/add/store would lose updates, the lock must not.
        let mut m = tiny(2);
        let lock = m.memory_mut().alloc(1); // full = free
        let cell = m.memory_mut().alloc(1);
        let mut b = ProgramBuilder::new();
        let (i, lim, tmp, one) = (Reg(2), Reg(3), Reg(4), Reg(5));
        b.li(i, 0).li(lim, 25).li(one, 1);
        let top = b.here();
        emit_lock(&mut b, lock, Reg(6));
        // Plain (non-atomic) RMW inside the critical section.
        b.load_abs(tmp, cell);
        b.add(tmp, tmp, one);
        b.store_abs(tmp, cell);
        emit_unlock(&mut b, lock, Reg(6));
        b.addi(i, i, 1);
        b.blt(i, lim, top);
        b.halt();
        let prog = b.build();
        let rep = m.run(&prog, 8, |_, _| {});
        assert_eq!(m.memory().peek(cell), 16 * 25);
        assert!(rep.sync_retries > 0, "contention must actually occur");
    }

    #[test]
    fn critical_add_is_atomic() {
        let mut m = tiny(2);
        let cell = m.memory_mut().alloc(1);
        let mut b = ProgramBuilder::new();
        let (i, lim, delta) = (Reg(2), Reg(3), Reg(4));
        b.li(i, 0).li(lim, 40).li(delta, 3);
        let top = b.here();
        emit_critical_add(&mut b, cell, delta, Reg(6));
        b.addi(i, i, 1);
        b.blt(i, lim, top);
        b.halt();
        let prog = b.build();
        m.run(&prog, 8, |_, _| {});
        assert_eq!(m.memory().peek(cell), 16 * 40 * 3);
    }

    #[test]
    fn barrier_separates_phases() {
        // Phase 1: every stream stores its id into slot[id].
        // Barrier.
        // Phase 2: every stream reads its *neighbor's* slot; without the
        // barrier some neighbor slots could still be unwritten (0).
        let streams = 8usize;
        let mut m = tiny(1);
        let counter = m.memory_mut().alloc(1);
        let genw = m.memory_mut().alloc(1);
        let slots = m.memory_mut().alloc(streams);
        let out = m.memory_mut().alloc(streams);
        let mut b = ProgramBuilder::new();
        let (v, addr) = (Reg(2), Reg(3));
        // slot[id] = id + 100
        b.addi(v, Reg(1), 100);
        b.add(addr, Reg(1), Reg(0));
        b.store(v, addr, slots as i64);
        emit_barrier(
            &mut b,
            counter,
            genw,
            streams as i64,
            Reg(6),
            Reg(7),
            Reg(8),
            Reg(9),
        );
        // out[id] = slot[(id+1) % streams]
        b.addi(addr, Reg(1), 1);
        let wrap = b.blt_fwd(addr, Reg(9)); // r9 still holds `streams`
        b.li(addr, 0);
        b.bind(wrap);
        b.load(v, addr, slots as i64);
        b.add(addr, Reg(1), Reg(0));
        b.store(v, addr, out as i64);
        b.halt();
        let prog = b.build();
        m.run(&prog, streams, |_, _| {});
        for id in 0..streams {
            let neighbor = (id + 1) % streams;
            assert_eq!(
                m.memory().peek(out + id),
                100 + neighbor as i64,
                "stream {id} must see its neighbor's phase-1 write"
            );
        }
    }

    #[test]
    fn barrier_reusable_across_generations() {
        // Two barriers in a row: the sense-reversing generation must make
        // the second one work without resetting memory.
        let streams = 4usize;
        let mut m = tiny(1);
        let counter = m.memory_mut().alloc(1);
        let genw = m.memory_mut().alloc(1);
        let probe = m.memory_mut().alloc(1);
        let mut b = ProgramBuilder::new();
        let one = Reg(5);
        b.li(one, 1);
        for _ in 0..2 {
            emit_barrier(
                &mut b,
                counter,
                genw,
                streams as i64,
                Reg(6),
                Reg(7),
                Reg(8),
                Reg(9),
            );
            b.fetch_add_imm(Reg(10), probe as i64, one);
        }
        b.halt();
        let prog = b.build();
        m.run(&prog, streams, |_, _| {});
        assert_eq!(m.memory().peek(probe), 2 * streams as i64);
        assert_eq!(m.memory().peek(genw), 2, "two generations elapsed");
        assert_eq!(m.memory().peek(counter), 0, "counter reset each time");
    }

    #[test]
    fn reduction_totals_partial_sums() {
        let streams = 8usize;
        let mut m = tiny(2);
        let acc = m.memory_mut().alloc(1);
        let mut b = ProgramBuilder::new();
        // value = stream id squared (id * id)
        b.mul(Reg(2), Reg(1), Reg(1));
        emit_reduce_add(&mut b, acc, Reg(2), Reg(3));
        b.halt();
        let prog = b.build();
        m.run(&prog, streams, |_, _| {});
        let expect: i64 = (0..16).map(|i| i * i).sum();
        assert_eq!(m.memory().peek(acc), expect);
    }

    #[test]
    fn lock_cost_scales_with_contention() {
        // Same critical-section total work, 1 vs 8 contending streams:
        // the serialized version on 8 streams must not be faster than
        // 8x the single-stream run (Amdahl floor) and retries appear.
        let run = |streams: usize, iters: i64| {
            let mut m = tiny(1);
            let lock = m.memory_mut().alloc(1);
            let cell = m.memory_mut().alloc(1);
            let mut b = ProgramBuilder::new();
            let (i, lim, one, tmp) = (Reg(2), Reg(3), Reg(4), Reg(5));
            b.li(i, 0).li(lim, iters).li(one, 1);
            let top = b.here();
            emit_lock(&mut b, lock, Reg(6));
            b.load_abs(tmp, cell);
            b.add(tmp, tmp, one);
            b.store_abs(tmp, cell);
            emit_unlock(&mut b, lock, Reg(6));
            b.addi(i, i, 1);
            b.blt(i, lim, top);
            b.halt();
            let prog = b.build();
            m.run(&prog, streams, |_, _| {})
        };
        let solo = run(1, 64);
        let contended = run(8, 8); // same total critical sections
        assert_eq!(solo.mem.sync_ops, contended.mem.sync_ops);
        assert!(contended.sync_retries > solo.sync_retries);
    }

    #[test]
    fn sync_primitives_are_trace_terminators() {
        // Lock/unlock compile to readfe/writeef; both must break traces
        // (run_len 0) so the batched engine never reorders past them.
        let mut b = ProgramBuilder::new();
        emit_lock(&mut b, 0, Reg(2));
        b.addi(Reg(3), Reg(3), 1);
        emit_unlock(&mut b, 0, Reg(2));
        b.halt();
        let prog = b.build();
        let t = prog.traces();
        assert_eq!(t.run_len(0), 0, "readfe must terminate a trace");
        assert_eq!(t.run_len(2), 0, "writeef must terminate a trace");
        assert_eq!(t.run_len(1), 1, "the critical body itself is private");
    }
}
