//! The scheduler's calendar queue ("time wheel"), shared by every engine.
//!
//! Extracted from `machine.rs` so the partitioned engine can instantiate
//! one wheel per worker partition; the ordering contract is unchanged:
//! events pop in ascending `(time, stream_id)` order, exactly like the
//! `BinaryHeap<Reverse<(time, stream)>>` the wheel replaced (and which the
//! property tests below keep as the reference model).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Buckets in the scheduler's calendar queue, covering this many thirds of
/// a cycle ahead of the current time (4096 thirds ≈ 1365 cycles, well past
/// the memory latency and sync-retry horizons). Events beyond the window —
/// e.g. streams parked behind a deep hotspot backlog — wait in an overflow
/// heap and migrate into the wheel as time advances.
pub(crate) const WHEEL_SIZE: usize = 1 << 12;

/// Empty-bucket / end-of-list marker in [`TimeWheel`]'s intrusive lists.
const NO_STREAM: u32 = u32::MAX;

/// The scheduler's ready queue: a calendar queue ("time wheel") ordered
/// exactly like the `BinaryHeap<Reverse<(time, stream)>>` it replaces.
///
/// Every live stream has at most one pending event, so each wheel bucket
/// is an intrusive singly-linked list threaded through a per-stream `next`
/// array — push is O(1) with zero allocation, and draining a bucket sorts
/// the (few) stream ids so same-time events still pop in id order. A
/// binary heap pays a cache-missing, branch-mispredicting sift per event;
/// the wheel pays an array write, which is what makes the interpreter's
/// issue loop fast at hundreds of streams.
pub(crate) struct TimeWheel {
    /// Bucket heads, indexed by `time & (WHEEL_SIZE - 1)`.
    head: Box<[u32]>,
    /// Occupancy bitmap over buckets (one bit per bucket), so finding the
    /// next nonempty bucket is a couple of `trailing_zeros` words rather
    /// than a linear walk over empty slots.
    occ: Box<[u64]>,
    /// Intrusive next-pointers, indexed by stream id.
    next: Box<[u32]>,
    /// Events at or beyond `base + WHEEL_SIZE`.
    overflow: BinaryHeap<Reverse<(u64, u32)>>,
    /// All wheel events lie in `[base, base + WHEEL_SIZE)`.
    base: u64,
    /// Events currently threaded in the wheel (not overflow, not bucket).
    wheel_count: usize,
    /// The drained current bucket, ascending ids, read via `cursor`.
    bucket: Vec<u32>,
    cursor: usize,
    bucket_time: u64,
}

impl TimeWheel {
    pub(crate) fn new(total_streams: usize) -> Self {
        TimeWheel {
            head: vec![NO_STREAM; WHEEL_SIZE].into_boxed_slice(),
            occ: vec![0u64; WHEEL_SIZE / 64].into_boxed_slice(),
            next: vec![NO_STREAM; total_streams].into_boxed_slice(),
            overflow: BinaryHeap::new(),
            base: 0,
            wheel_count: 0,
            bucket: Vec::new(),
            cursor: 0,
            bucket_time: 0,
        }
    }

    /// Schedule stream `id` at time `t` (thirds). `t` must be strictly
    /// after the most recently popped event time (equivalently: at or
    /// after `base`) — pushes always target the future. The engines hold
    /// this by construction: a requeue pushes at `e > t`, and every wake
    /// time is at least `issue_at + 1`.
    #[inline]
    pub(crate) fn push(&mut self, t: u64, id: u32) {
        if t < self.base + WHEEL_SIZE as u64 {
            let b = t as usize & (WHEEL_SIZE - 1);
            self.next[id as usize] = self.head[b];
            self.head[b] = id;
            self.occ[b >> 6] |= 1 << (b & 63);
            self.wheel_count += 1;
        } else {
            self.overflow.push(Reverse((t, id)));
        }
    }

    /// Time of the first occupied bucket at or after `from`. Requires
    /// `wheel_count > 0`; distances are computed modulo the wheel size.
    #[inline]
    fn next_occupied(&self, from: u64) -> u64 {
        let mask = WHEEL_SIZE - 1;
        let nwords = WHEEL_SIZE / 64;
        let start = from as usize & mask;
        let first_word = start >> 6;
        let head_bits = self.occ[first_word] & (!0u64 << (start & 63));
        if head_bits != 0 {
            let b = (first_word << 6) | head_bits.trailing_zeros() as usize;
            return from + (b.wrapping_sub(start) & mask) as u64;
        }
        for k in 1..=nwords {
            let wi = (first_word + k) & (nwords - 1);
            let bits = self.occ[wi];
            if bits != 0 {
                let b = (wi << 6) | bits.trailing_zeros() as usize;
                return from + (b.wrapping_sub(start) & mask) as u64;
            }
        }
        unreachable!("next_occupied called on an empty wheel")
    }

    /// Move overflow events that now fit the window into the wheel.
    fn admit_overflow(&mut self) {
        while let Some(&Reverse((t, id))) = self.overflow.peek() {
            if t >= self.base + WHEEL_SIZE as u64 {
                break;
            }
            self.overflow.pop();
            let b = t as usize & (WHEEL_SIZE - 1);
            self.next[id as usize] = self.head[b];
            self.head[b] = id;
            self.occ[b >> 6] |= 1 << (b & 63);
            self.wheel_count += 1;
        }
    }

    /// Next event in ascending `(time, id)` order.
    pub(crate) fn pop(&mut self) -> Option<(u64, u32)> {
        if self.cursor < self.bucket.len() {
            let id = self.bucket[self.cursor];
            self.cursor += 1;
            return Some((self.bucket_time, id));
        }
        loop {
            if self.wheel_count == 0 {
                // Jump straight to the earliest parked event.
                let &Reverse((t, _)) = self.overflow.peek()?;
                self.base = t;
                self.admit_overflow();
                continue;
            }
            // The nearest event is in the window; jump to its bucket.
            let t = self.next_occupied(self.base);
            let b = t as usize & (WHEEL_SIZE - 1);
            self.bucket.clear();
            let mut id = self.head[b];
            self.head[b] = NO_STREAM;
            self.occ[b >> 6] &= !(1 << (b & 63));
            while id != NO_STREAM {
                self.bucket.push(id);
                id = self.next[id as usize];
            }
            self.wheel_count -= self.bucket.len();
            self.bucket.sort_unstable();
            self.bucket_time = t;
            self.cursor = 1;
            self.base = t + 1;
            self.admit_overflow();
            return Some((t, self.bucket[0]));
        }
    }

    /// [`Self::pop`], but only if the next event precedes `limit` — the
    /// partitioned engine's bounded-window pop. Events at or beyond the
    /// window end stay queued (including any still parked in overflow),
    /// so the wheel is left exactly as a plain `peek` would leave it.
    #[inline]
    pub(crate) fn pop_before(&mut self, limit: u64) -> Option<(u64, u32)> {
        match self.peek() {
            Some((t, _)) if t < limit => self.pop(),
            _ => None,
        }
    }

    /// Earliest pending event in ascending `(time, id)` order, without
    /// consuming it — the trace engine's preemption horizon. The common
    /// case (a remnant of the current bucket) is a pair of loads; the
    /// out-of-line slow path scans the occupancy bitmap and walks that
    /// bucket's short intrusive list for its minimum id, draining
    /// nothing, so a subsequent [`Self::pop`] is unaffected.
    #[inline]
    pub(crate) fn peek(&mut self) -> Option<(u64, u32)> {
        if self.cursor < self.bucket.len() {
            return Some((self.bucket_time, self.bucket[self.cursor]));
        }
        self.peek_slow()
    }

    #[inline(never)]
    fn peek_slow(&self) -> Option<(u64, u32)> {
        if self.wheel_count > 0 {
            let t = self.next_occupied(self.base);
            let b = t as usize & (WHEEL_SIZE - 1);
            let mut id = self.head[b];
            let mut min_id = id;
            while id != NO_STREAM {
                min_id = min_id.min(id);
                id = self.next[id as usize];
            }
            // Windowed events all precede anything parked in overflow.
            return Some((t, min_id));
        }
        self.overflow.peek().map(|&Reverse(e)| e)
    }
}

#[cfg(test)]
mod tests {
    //! Ordering oracle: drive a wheel and a `BinaryHeap<Reverse<(t, id)>>`
    //! reference model through the same push/pop script and require
    //! identical pop sequences — including far-future pushes that park in
    //! the overflow heap and drain as `base` wraps past `WHEEL_SIZE`.
    //!
    //! The wheel's contract is narrower than a general priority queue:
    //! every stream id has at most one pending event, and pushes never
    //! precede the most recently popped time. The generators respect both.

    use super::*;
    use proptest::prelude::*;
    use std::collections::BinaryHeap;

    /// Reference model: a heap plus the pop-order bookkeeping the real
    /// engines rely on (monotone pop times, id tie-break).
    struct HeapModel {
        heap: BinaryHeap<Reverse<(u64, u32)>>,
    }

    impl HeapModel {
        fn new() -> Self {
            HeapModel {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, t: u64, id: u32) {
            self.heap.push(Reverse((t, id)));
        }
        fn pop(&mut self) -> Option<(u64, u32)> {
            self.heap.pop().map(|Reverse(e)| e)
        }
        fn peek(&self) -> Option<(u64, u32)> {
            self.heap.peek().map(|&Reverse(e)| e)
        }
    }

    /// One scripted action: push a parked stream at `floor + delta`, where
    /// `floor` is the earliest legal push time (one past the last popped
    /// event; the deltas deliberately straddle `WHEEL_SIZE` so overflow
    /// admission is exercised), or pop/peek and compare.
    #[derive(Debug, Clone, Copy)]
    enum Action {
        /// Push the next parked stream at `floor + delta`.
        Push { delta: u32 },
        /// Pop one event from both and compare.
        Pop,
        /// Peek both and compare (then pop, so the script advances).
        PeekPop,
        /// Bounded pop: `pop_before(now + window)` vs the model.
        PopBefore { window: u32 },
    }

    fn action() -> impl Strategy<Value = Action> {
        prop_oneof![
            // Near pushes (within the wheel window)...
            (0u32..64).prop_map(|delta| Action::Push { delta }),
            // ...far-future pushes, up to several wheel revolutions out.
            (0u32..3 * WHEEL_SIZE as u32).prop_map(|delta| Action::Push { delta }),
            Just(Action::Pop),
            Just(Action::PeekPop),
            (0u32..2 * WHEEL_SIZE as u32).prop_map(|window| Action::PopBefore { window }),
        ]
    }

    /// Run a script against both queues. `streams` ids cycle through a
    /// free pool so each id has at most one pending event (the wheel's
    /// intrusive-list invariant).
    fn run_script(actions: &[Action], streams: usize) {
        let mut wheel = TimeWheel::new(streams);
        let mut model = HeapModel::new();
        let mut free: Vec<u32> = (0..streams as u32).rev().collect();
        // Earliest legal push time: pushes must land strictly after the
        // most recently popped event. `delta == 0` probes the boundary.
        let mut floor = 0u64;
        for (step, &a) in actions.iter().enumerate() {
            match a {
                Action::Push { delta } => {
                    if let Some(id) = free.pop() {
                        wheel.push(floor + u64::from(delta), id);
                        model.push(floor + u64::from(delta), id);
                    }
                }
                Action::Pop => {
                    let got = wheel.pop();
                    let want = model.pop();
                    assert_eq!(got, want, "pop diverged at step {step}");
                    if let Some((t, id)) = got {
                        floor = t + 1;
                        free.push(id);
                    }
                }
                Action::PeekPop => {
                    assert_eq!(wheel.peek(), model.peek(), "peek diverged at step {step}");
                    let got = wheel.pop();
                    let want = model.pop();
                    assert_eq!(got, want, "pop-after-peek diverged at step {step}");
                    if let Some((t, id)) = got {
                        floor = t + 1;
                        free.push(id);
                    }
                }
                Action::PopBefore { window } => {
                    let limit = floor + u64::from(window);
                    let got = wheel.pop_before(limit);
                    let want = match model.peek() {
                        Some((t, _)) if t < limit => model.pop(),
                        _ => None,
                    };
                    assert_eq!(got, want, "pop_before diverged at step {step}");
                    if let Some((t, id)) = got {
                        floor = t + 1;
                        free.push(id);
                    }
                }
            }
        }
        // Drain both to the end: every remaining event must agree too
        // (this is where overflow events parked multiple wheel
        // revolutions out finally migrate in).
        loop {
            let got = wheel.pop();
            let want = model.pop();
            assert_eq!(got, want, "drain diverged");
            match got {
                Some((_, id)) => free.push(id),
                None => break,
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn wheel_matches_heap_model(
            actions in proptest::collection::vec(action(), 1..120),
            streams in 1usize..24,
        ) {
            run_script(&actions, streams);
        }
    }

    #[test]
    fn overflow_drains_as_base_wraps() {
        // Pin the exact scenario the proptest explores statistically: near
        // events interleaved with events parked several wheel sizes out;
        // popping must advance `base` past WHEEL_SIZE and admit them in
        // order.
        let n = 8;
        let mut wheel = TimeWheel::new(n);
        let mut model = HeapModel::new();
        let far = WHEEL_SIZE as u64;
        let times = [0, 3, far - 1, far, far + 1, 2 * far + 5, 3 * far, 7];
        for (id, &t) in times.iter().enumerate() {
            wheel.push(t, id as u32);
            model.push(t, id as u32);
        }
        loop {
            let got = wheel.pop();
            assert_eq!(got, model.pop());
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_and_pop_agree_after_wraparound() {
        let mut wheel = TimeWheel::new(4);
        // Two full revolutions with same-time id collisions at each stop.
        let mut t = 0u64;
        for round in 0..3u64 {
            wheel.push(t + round * (WHEEL_SIZE as u64 + 13), 0);
            wheel.push(t + round * (WHEEL_SIZE as u64 + 13), 2);
            wheel.push(t + round * (WHEEL_SIZE as u64 + 13) + 1, 1);
            let mut seen = Vec::new();
            for _ in 0..3 {
                let p = wheel.peek();
                let got = wheel.pop();
                assert_eq!(p, got, "peek must preview the pop");
                seen.push(got.unwrap());
            }
            // Same-time events pop in id order; later time follows.
            assert_eq!(seen[0].1, 0);
            assert_eq!(seen[1].1, 2);
            assert_eq!(seen[2].1, 1);
            assert_eq!(seen[0].0, seen[1].0);
            assert!(seen[2].0 > seen[1].0);
            t = seen[2].0;
        }
    }

    #[test]
    fn pop_before_respects_the_window() {
        let mut wheel = TimeWheel::new(3);
        wheel.push(5, 0);
        wheel.push(10, 1);
        wheel.push(WHEEL_SIZE as u64 + 40, 2); // parked in overflow
        assert_eq!(wheel.pop_before(5), None, "limit is exclusive");
        assert_eq!(wheel.pop_before(6), Some((5, 0)));
        assert_eq!(wheel.pop_before(10), None);
        assert_eq!(wheel.pop_before(11), Some((10, 1)));
        assert_eq!(wheel.pop_before(WHEEL_SIZE as u64 + 40), None);
        assert_eq!(
            wheel.pop_before(u64::MAX),
            Some((WHEEL_SIZE as u64 + 40, 2)),
            "overflow events must surface through pop_before too"
        );
        assert_eq!(wheel.pop_before(u64::MAX), None);
    }
}
