//! The MTA memory word: 64 data bits plus tag bits.
//!
//! "Each memory word is 68 bits: 64 data bits and 4 tag bits. One tag bit
//! (the full-and-empty bit) is used to implement synchronous load/store
//! operations." (§2.2). We model the data and the full/empty bit; the
//! remaining tag bits (trap, forward) are not exercised by the paper's
//! codes and are represented for completeness but unused by the engine.

/// One 68-bit MTA memory word (64-bit value + tag bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Word {
    /// The 64 data bits.
    pub value: i64,
    /// The full/empty synchronization bit. Ordinary memory is *full*;
    /// `readfe` atomically reads-and-empties, `writeef` writes-and-fills.
    pub full: bool,
    /// Forwarding tag bit (modeled, unused by the paper's kernels).
    pub forward: bool,
    /// Trap tag bit (modeled, unused by the paper's kernels).
    pub trap: bool,
}

impl Word {
    /// A full word holding `value` — the state of ordinary initialized
    /// memory.
    pub fn full(value: i64) -> Self {
        Word {
            value,
            full: true,
            forward: false,
            trap: false,
        }
    }

    /// An empty word (value retained but unreadable by sync loads until
    /// filled).
    pub fn empty() -> Self {
        Word {
            value: 0,
            full: false,
            forward: false,
            trap: false,
        }
    }
}

impl Default for Word {
    /// Memory comes up full-of-zero, like `malloc`'d MTA memory after
    /// initialization.
    fn default() -> Self {
        Word::full(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_zero() {
        let w = Word::default();
        assert!(w.full);
        assert_eq!(w.value, 0);
        assert!(!w.forward && !w.trap);
    }

    #[test]
    fn constructors() {
        assert!(Word::full(7).full);
        assert_eq!(Word::full(7).value, 7);
        assert!(!Word::empty().full);
    }
}
