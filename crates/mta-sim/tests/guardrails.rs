//! Guardrail differential suite: the failure paths must be as
//! engine-invariant as the happy paths.
//!
//! * A kernel that deadlocks (unmatched full/empty traffic) returns the
//!   **identical** [`SimError::Deadlock`] — same detection cycle, same
//!   per-stream diagnostics — from SingleStep, Trace, Compiled and
//!   Partitioned at every worker count, and never hangs.
//! * A kernel that outlives the cycle budget returns
//!   [`SimError::CycleBudgetExceeded`] from every engine.
//! * A deterministic [`FaultPlan`] perturbs every engine identically:
//!   latency spikes leave the issued-instruction count unchanged and only
//!   ever lengthen the run; stuck tag bits drive the deadlock detector.
//! * Property test: random full/empty kernels — balanced and deliberately
//!   unbalanced — either halt with identical reports or deadlock with
//!   identical errors across all four engines and `W ∈ {1, 2, 4, 8}`,
//!   with [`EngineStats::windows`] proving the partitioned runs really
//!   executed merge rounds rather than falling back to the interpreter
//!   (the sync fallback is gone).
//!
//! [`EngineStats::windows`]: archgraph_mta_sim::report::EngineStats

use proptest::prelude::*;

use archgraph_core::MtaParams;
use archgraph_mta_sim::isa::{Program, ProgramBuilder, Reg};
use archgraph_mta_sim::machine::{with_workers, MtaEngine, MtaMachine};
use archgraph_mta_sim::report::RunReport;
use archgraph_mta_sim::{FaultPlan, SimError};

const MEM_WORDS: usize = 32;

const ALL_ENGINES: [MtaEngine; 4] = [
    MtaEngine::SingleStep,
    MtaEngine::Trace,
    MtaEngine::Compiled,
    MtaEngine::Partitioned,
];

/// Run `prog` under one engine with optional empty words, fault plan and
/// cycle budget; return the outcome and the final memory image.
fn try_engine(
    prog: &Program,
    engine: MtaEngine,
    p: usize,
    streams: usize,
    empties: &[usize],
    plan: Option<&FaultPlan>,
    max_cycles: Option<u64>,
) -> (Result<RunReport, SimError>, Vec<i64>) {
    let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), p, 1 << 12);
    m.memory_mut().alloc(MEM_WORDS);
    for &a in empties {
        m.memory_mut().set_empty(a);
    }
    m.memory_mut().set_fault_plan(plan.cloned());
    if let Some(b) = max_cycles {
        m.set_max_cycles(b);
    }
    m.set_engine(engine);
    let out = m.try_run(prog, streams, |_, _| {});
    // Path proof: full/empty programs no longer fall back to the
    // interpreter — every region the partitioned engine is asked to run
    // (halting, deadlocking, or over budget) reports at least one merge
    // round, and no other engine reports any.
    let windows = m.engine_stats().windows;
    if engine == MtaEngine::Partitioned {
        assert!(
            windows > 0,
            "partitioned run must execute merge rounds, not fall back"
        );
    } else {
        assert_eq!(windows, 0, "{engine:?} must not count merge rounds");
    }
    (out, m.memory().peek_slice(0, MEM_WORDS))
}

/// Producer/consumer handshake over `mem[1]` with a deliberate imbalance:
/// the lower half of the streams each produce one value via `writeef`,
/// the upper half each consume **two** via `readfe`. Half the demanded
/// values never arrive, so once the producers halt, at least one consumer
/// is parked on an empty word forever — a guaranteed deadlock.
fn unbalanced_handshake(total: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (v, half, t) = (Reg(2), Reg(3), Reg(5));
    b.li(half, total / 2);
    b.mul(v, Reg(1), Reg(1));
    let consumer = b.bge_fwd(Reg(1), half);
    b.writeef(v, Reg(0), 1);
    b.halt();
    b.bind(consumer);
    b.readfe(v, Reg(0), 1);
    b.fetch_add_imm(t, 4, v);
    b.readfe(v, Reg(0), 1); // over-consume: this read can never be matched
    b.fetch_add_imm(t, 4, v);
    b.halt();
    b.build()
}

/// The balanced variant (same shape as `pinned_sync_handshake` in the
/// trace differential suite): halts cleanly unless a fault plan wedges it.
fn balanced_handshake(total: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (v, half, t) = (Reg(2), Reg(3), Reg(5));
    b.li(half, total / 2);
    b.mul(v, Reg(1), Reg(1));
    let consumer = b.bge_fwd(Reg(1), half);
    b.writeef(v, Reg(0), 1);
    b.halt();
    b.bind(consumer);
    b.readfe(v, Reg(0), 1);
    b.fetch_add_imm(t, 4, v);
    b.halt();
    b.build()
}

/// Fig. 1-shaped list walk (memory-heavy, sync-free) plus its memory
/// image — the workhorse for fault-latency and watchdog checks that must
/// exercise the partitioned engine's parallel path.
fn walk_kernel() -> (Program, Vec<i64>) {
    let n = 24i64;
    let mut mem = vec![0i64; MEM_WORDS];
    for i in 0..n {
        let succ = (i + 1) % n;
        mem[(2 + i) as usize] = if succ % 4 == 0 { 0 } else { 2 + succ };
    }
    let mut b = ProgramBuilder::new();
    let (i, one, lim, j, c) = (Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(one, 1).li(lim, n);
    let claim = b.here();
    b.fetch_add_imm(i, 0, one);
    let done = b.bge_fwd(i, lim);
    b.addi(j, i, 2);
    let walk = b.here();
    b.load(j, j, 0);
    b.beq(j, Reg(0), claim);
    b.fetch_add_imm(c, 1, one);
    b.jmp(walk);
    b.bind(done);
    b.halt();
    (b.build(), mem)
}

fn poke_all(m: &mut MtaMachine, mem: &[i64]) {
    for (a, &v) in mem.iter().enumerate() {
        m.memory_mut().poke(a, v);
    }
}

/// An unmatched `readfe` kernel must return the byte-identical
/// `SimError::Deadlock` from all four engines at every worker count —
/// and, critically, return at all.
#[test]
fn deadlock_is_bit_identical_across_engines_and_worker_counts() {
    for &(p, streams) in &[(1usize, 2usize), (2, 4), (2, 8)] {
        let prog = unbalanced_handshake((p * streams) as i64);
        let (oracle, mem_oracle) =
            try_engine(&prog, MtaEngine::SingleStep, p, streams, &[1], None, None);
        let err = oracle
            .clone()
            .expect_err("over-consuming kernel must deadlock");
        match &err {
            SimError::Deadlock { cycle, blocked } => {
                assert!(*cycle > 0);
                assert!(!blocked.is_empty());
                for bs in blocked {
                    assert_eq!(bs.op, "readfe", "only consumers can be parked");
                    assert_eq!(bs.addr, 1);
                    assert!(!bs.full, "parked consumers see an empty word");
                    assert!(bs.stream >= p * streams / 2, "producers all halt");
                }
            }
            other => panic!("expected a deadlock, got {other}"),
        }
        for engine in [
            MtaEngine::Trace,
            MtaEngine::Compiled,
            MtaEngine::Partitioned,
        ] {
            for w in [1usize, 2, 4, 8] {
                let (out, mem_out) = with_workers(w, || {
                    try_engine(&prog, engine, p, streams, &[1], None, None)
                });
                assert_eq!(
                    out, oracle,
                    "{engine:?} W={w} deadlock diverged at p={p} streams={streams}"
                );
                assert_eq!(
                    mem_out, mem_oracle,
                    "{engine:?} W={w} memory diverged at p={p} streams={streams}"
                );
            }
        }
    }
}

/// The deadlock error's Display text names every parked stream.
#[test]
fn deadlock_diagnostics_are_human_readable() {
    let prog = unbalanced_handshake(2);
    let (out, _) = try_engine(&prog, MtaEngine::Trace, 1, 2, &[1], None, None);
    let msg = out.expect_err("must deadlock").to_string();
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("readfe"), "{msg}");
    assert!(msg.contains("mem[1]"), "{msg}");
}

/// A non-terminating (sync-free) kernel trips the watchdog on every
/// engine with the same budget, and `run` surfaces it as a panic rather
/// than a hang.
#[test]
fn watchdog_fires_identically_on_runaway_kernels() {
    let mut b = ProgramBuilder::new();
    b.li(Reg(2), 0);
    let top = b.here();
    b.addi(Reg(2), Reg(2), 1);
    b.store_abs(Reg(2), 0);
    b.jmp(top);
    b.halt();
    let prog = b.build();

    let budget = 500u64;
    let (oracle, _) = try_engine(&prog, MtaEngine::SingleStep, 2, 4, &[], None, Some(budget));
    match oracle
        .as_ref()
        .expect_err("runaway kernel must trip the watchdog")
    {
        SimError::CycleBudgetExceeded {
            budget: b,
            spent,
            what,
        } => {
            assert_eq!(*b, budget);
            assert!(*spent > budget, "spent {spent} must exceed the budget");
            assert_eq!(*what, "mta cycles");
        }
        other => panic!("expected a budget error, got {other}"),
    }
    for engine in [MtaEngine::Trace, MtaEngine::Compiled] {
        let (out, _) = try_engine(&prog, engine, 2, 4, &[], None, Some(budget));
        assert_eq!(out, oracle, "{engine:?} watchdog diverged");
    }
    // The partitioned engine detects the overrun at a window merge, so its
    // `spent` may name a different (still over-budget) cycle.
    for w in [1usize, 2, 4] {
        let (out, _) = with_workers(w, || {
            try_engine(&prog, MtaEngine::Partitioned, 2, 4, &[], None, Some(budget))
        });
        match out.expect_err("partitioned watchdog must fire") {
            SimError::CycleBudgetExceeded {
                budget: b,
                spent,
                what,
            } => {
                assert_eq!(b, budget);
                assert!(spent > budget);
                assert_eq!(what, "mta cycles");
            }
            other => panic!("expected a budget error, got {other}"),
        }
    }
}

/// A kernel that finishes inside the budget is untouched by the watchdog:
/// same report with and without a (tight but sufficient) budget.
#[test]
fn watchdog_is_invisible_inside_the_budget() {
    let (prog, mem) = walk_kernel();
    let run = |budget: Option<u64>| {
        let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), 2, 1 << 12);
        m.memory_mut().alloc(MEM_WORDS);
        poke_all(&mut m, &mem);
        if let Some(b) = budget {
            m.set_max_cycles(b);
        }
        m.try_run(&prog, 4, |_, _| {}).expect("walk kernel halts")
    };
    let free = run(None);
    let fenced = run(Some(free.cycles + 1));
    assert_eq!(free, fenced, "an unexercised watchdog must cost nothing");
}

/// Injected memory latency perturbs every engine identically, never
/// changes *what* executes (issued instructions, op mix, memory traffic),
/// and can only lengthen the schedule.
#[test]
fn fault_latency_is_engine_invariant_and_monotone() {
    let (prog, mem_init) = walk_kernel();
    let plan = FaultPlan::parse("mem-latency=30,rate=1:9").expect("plan parses");
    let run = |engine: MtaEngine, plan: Option<&FaultPlan>| {
        let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), 2, 1 << 12);
        m.memory_mut().alloc(MEM_WORDS);
        poke_all(&mut m, &mem_init);
        m.memory_mut().set_fault_plan(plan.cloned());
        m.set_engine(engine);
        let rep = m.try_run(&prog, 4, |_, _| {}).expect("kernel still halts");
        (rep, m.memory().peek_slice(0, MEM_WORDS))
    };
    let (clean, _) = run(MtaEngine::SingleStep, None);
    let (faulted, mem_faulted) = run(MtaEngine::SingleStep, Some(&plan));
    assert_eq!(
        faulted.issued, clean.issued,
        "latency must not change the work"
    );
    assert_eq!(faulted.op_mix, clean.op_mix);
    assert_eq!(faulted.mem, clean.mem);
    assert!(
        faulted.cycles >= clean.cycles,
        "extra latency can only lengthen the run ({} < {})",
        faulted.cycles,
        clean.cycles
    );
    for engine in [
        MtaEngine::Trace,
        MtaEngine::Compiled,
        MtaEngine::Partitioned,
    ] {
        for w in [1usize, 2, 4, 8] {
            let (rep, mem_out) = with_workers(w, || run(engine, Some(&plan)));
            assert_eq!(
                rep, faulted,
                "{engine:?} W={w} diverged under the fault plan"
            );
            assert_eq!(mem_out, mem_faulted, "{engine:?} W={w} memory diverged");
        }
    }
}

/// Delayed sync-retry wakeups likewise perturb all engines identically
/// on a kernel that leans on retries, and leave the final memory intact.
#[test]
fn fault_wake_delay_is_engine_invariant() {
    let plan = FaultPlan::parse("wake-delay=9,rate=0:3").expect("plan parses");
    for &(p, streams) in &[(1usize, 2usize), (2, 4)] {
        let prog = balanced_handshake((p * streams) as i64);
        let (oracle, mem_oracle) = try_engine(
            &prog,
            MtaEngine::SingleStep,
            p,
            streams,
            &[1],
            Some(&plan),
            None,
        );
        let rep = oracle.as_ref().expect("balanced handshake halts");
        assert!(rep.mem.sync_ops > 0, "handshake must use sync ops");
        for engine in [
            MtaEngine::Trace,
            MtaEngine::Compiled,
            MtaEngine::Partitioned,
        ] {
            let (out, mem_out) = try_engine(&prog, engine, p, streams, &[1], Some(&plan), None);
            assert_eq!(out, oracle, "{engine:?} diverged under wake delay");
            assert_eq!(mem_out, mem_oracle);
        }
    }
}

/// A stuck-empty tag starves consumers: `readfe` can never observe a full
/// word, so the balanced handshake — which halts cleanly without the
/// fault — deadlocks, identically, on every engine.
#[test]
fn stuck_tag_fault_drives_the_deadlock_detector() {
    let plan = FaultPlan::parse("stuck-empty,rate=0:5").expect("plan parses");
    for &(p, streams) in &[(1usize, 2usize), (2, 4)] {
        let prog = balanced_handshake((p * streams) as i64);
        // Sanity: clean machine halts.
        let (clean, _) = try_engine(&prog, MtaEngine::SingleStep, p, streams, &[1], None, None);
        assert!(clean.is_ok(), "balanced handshake halts without the fault");
        let (oracle, mem_oracle) = try_engine(
            &prog,
            MtaEngine::SingleStep,
            p,
            streams,
            &[1],
            Some(&plan),
            None,
        );
        match oracle
            .as_ref()
            .expect_err("stuck-empty must starve the consumers")
        {
            SimError::Deadlock { blocked, .. } => {
                assert!(!blocked.is_empty());
                for bs in blocked {
                    assert_eq!(bs.op, "readfe");
                    assert!(!bs.full, "the observed tag is pinned empty");
                }
            }
            other => panic!("expected a deadlock, got {other}"),
        }
        for engine in [
            MtaEngine::Trace,
            MtaEngine::Compiled,
            MtaEngine::Partitioned,
        ] {
            let (out, mem_out) = try_engine(&prog, engine, p, streams, &[1], Some(&plan), None);
            assert_eq!(out, oracle, "{engine:?} diverged under stuck-empty");
            assert_eq!(mem_out, mem_oracle);
        }
    }
}

/// The structural fault axis — per-processor stalls, degraded links,
/// brownouts, and all three at once — perturbs every engine identically
/// at every worker count, never changes what executes, and only ever
/// lengthens the schedule.
#[test]
fn structural_faults_are_engine_invariant_and_monotone() {
    let (prog, mem_init) = walk_kernel();
    let run = |engine: MtaEngine, plan: Option<&FaultPlan>| {
        let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), 2, 1 << 12);
        m.memory_mut().alloc(MEM_WORDS);
        poke_all(&mut m, &mem_init);
        m.memory_mut().set_fault_plan(plan.cloned());
        m.set_engine(engine);
        let rep = m.try_run(&prog, 4, |_, _| {}).expect("kernel still halts");
        (rep, m.memory().peek_slice(0, MEM_WORDS))
    };
    let (clean, _) = run(MtaEngine::SingleStep, None);
    for spec in [
        "stall=30,stall-period=300:7",
        "link-latency=60,rate=1:7",
        "brownout=4,brownout-at=300,brownout-for=3000:7",
        "stall=30,stall-period=300,link-latency=60,brownout=2,rate=1:7",
    ] {
        let plan = FaultPlan::parse(spec).expect("plan parses");
        let (faulted, mem_faulted) = run(MtaEngine::SingleStep, Some(&plan));
        assert_eq!(
            faulted.issued, clean.issued,
            "{spec}: faults must not change the work"
        );
        assert_eq!(faulted.op_mix, clean.op_mix, "{spec}");
        assert_eq!(faulted.mem, clean.mem, "{spec}");
        assert!(
            faulted.cycles >= clean.cycles,
            "{spec}: structural faults can only lengthen the run ({} < {})",
            faulted.cycles,
            clean.cycles
        );
        for engine in [
            MtaEngine::Trace,
            MtaEngine::Compiled,
            MtaEngine::Partitioned,
        ] {
            for w in [1usize, 2, 4, 8] {
                let (rep, mem_out) = with_workers(w, || run(engine, Some(&plan)));
                assert_eq!(rep, faulted, "{engine:?} W={w} diverged under {spec}");
                assert_eq!(
                    mem_out, mem_faulted,
                    "{engine:?} W={w} memory diverged under {spec}"
                );
            }
        }
    }
}

/// Stall windows genuinely cost time: a plan whose windows cover a tenth
/// of every period must lengthen a memory-heavy kernel on every engine
/// (guarding against the adjustment silently short-circuiting).
#[test]
fn stall_windows_lengthen_the_schedule() {
    let (prog, mem_init) = walk_kernel();
    let run = |plan: Option<&FaultPlan>| {
        let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), 2, 1 << 12);
        m.memory_mut().alloc(MEM_WORDS);
        poke_all(&mut m, &mem_init);
        m.memory_mut().set_fault_plan(plan.cloned());
        m.try_run(&prog, 4, |_, _| {}).expect("kernel halts").cycles
    };
    let clean = run(None);
    let plan = FaultPlan::parse("stall=90,stall-period=300:7").unwrap();
    let stalled = run(Some(&plan));
    assert!(
        stalled > clean,
        "stalls must lengthen the run ({stalled} <= {clean})"
    );
}

/// A deadlock reached *through* a structural fault plan still produces
/// the bit-identical diagnostic from every engine at every worker count:
/// stalls and link delays shift the schedule, but the detection cycle and
/// the parked set are schedule-invariant.
#[test]
fn structural_faults_preserve_deadlock_identity() {
    let plan =
        FaultPlan::parse("stall=30,stall-period=300,link-latency=60,brownout=2,rate=1:11").unwrap();
    for &(p, streams) in &[(1usize, 2usize), (2, 4)] {
        let prog = unbalanced_handshake((p * streams) as i64);
        let (oracle, mem_oracle) = try_engine(
            &prog,
            MtaEngine::SingleStep,
            p,
            streams,
            &[1],
            Some(&plan),
            None,
        );
        assert!(
            matches!(oracle, Err(SimError::Deadlock { .. })),
            "over-consuming kernel must still deadlock under faults: {oracle:?}"
        );
        for engine in [
            MtaEngine::Trace,
            MtaEngine::Compiled,
            MtaEngine::Partitioned,
        ] {
            for w in [1usize, 2, 4, 8] {
                let (out, mem_out) = with_workers(w, || {
                    try_engine(&prog, engine, p, streams, &[1], Some(&plan), None)
                });
                assert_eq!(
                    out, oracle,
                    "{engine:?} W={w} deadlock diverged under the structural plan"
                );
                assert_eq!(mem_out, mem_oracle, "{engine:?} W={w} memory diverged");
            }
        }
    }
}

/// Build a full/empty kernel where the lower half of the streams each
/// perform `prod_reps` `writeef`s and the upper half `cons_reps`
/// `readfe`s against the same word. Balanced counts halt; unbalanced
/// counts deadlock. Either way, every engine must agree bit-for-bit.
fn repeated_handshake(total: i64, prod_reps: u8, cons_reps: u8) -> Program {
    let mut b = ProgramBuilder::new();
    let (v, half, t, k) = (Reg(2), Reg(3), Reg(5), Reg(6));
    b.li(half, total / 2);
    b.mul(v, Reg(1), Reg(1));
    let consumer = b.bge_fwd(Reg(1), half);
    if prod_reps > 0 {
        b.li(k, prod_reps as i64);
        let top = b.here();
        b.writeef(v, Reg(0), 1);
        b.addi(v, v, 1);
        b.addi(k, k, -1);
        b.bne(k, Reg(0), top);
    }
    b.halt();
    b.bind(consumer);
    if cons_reps > 0 {
        b.li(k, cons_reps as i64);
        let top = b.here();
        b.readfe(v, Reg(0), 1);
        b.fetch_add_imm(t, 4, v);
        b.addi(k, k, -1);
        b.bne(k, Reg(0), top);
    }
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generated full/empty kernel — matched or deliberately
    /// unmatched — either halts with identical reports or deadlocks with
    /// identical diagnostics on all four engines and every worker count.
    #[test]
    fn kernels_halt_or_deadlock_identically(
        prod_reps in 0u8..3,
        cons_reps in 0u8..3,
        shape_idx in 0usize..2,
    ) {
        let (p, streams) = [(1usize, 2usize), (2, 4)][shape_idx];
        let prog = repeated_handshake((p * streams) as i64, prod_reps, cons_reps);
        let (oracle, mem_oracle) =
            try_engine(&prog, MtaEngine::SingleStep, p, streams, &[1], None, None);
        // The outcome is decided by the aggregate writeef/readfe counts.
        if prod_reps == cons_reps {
            prop_assert!(oracle.is_ok(), "balanced kernel must halt: {:?}", oracle);
        } else {
            prop_assert!(
                matches!(oracle, Err(SimError::Deadlock { .. })),
                "unbalanced kernel must deadlock: {:?}",
                oracle
            );
        }
        for engine in [MtaEngine::Trace, MtaEngine::Compiled, MtaEngine::Partitioned] {
            for w in [1usize, 2, 4, 8] {
                let (out, mem_out) = with_workers(w, || {
                    try_engine(&prog, engine, p, streams, &[1], None, None)
                });
                prop_assert_eq!(
                    &out, &oracle,
                    "{:?} W={} outcome diverged (prod={}, cons={})",
                    engine, w, prod_reps, cons_reps
                );
                prop_assert_eq!(
                    &mem_out, &mem_oracle,
                    "{:?} W={} memory diverged", engine, w
                );
            }
        }
    }
}

/// `run` (the panicking wrapper) converts a deadlock into a panic that
/// carries the structured message — it must never hang.
#[test]
#[should_panic(expected = "mta region failed: deadlock")]
fn run_panics_with_the_structured_message() {
    let prog = unbalanced_handshake(2);
    let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), 1, 1 << 12);
    m.memory_mut().alloc(MEM_WORDS);
    m.memory_mut().set_empty(1);
    m.set_engine(MtaEngine::Trace);
    let _ = m.run(&prog, 2, |_, _| {});
}

/// All engines must agree with each other even when both guardrails are
/// armed at once: the deadlock detector wins when the deadlock completes
/// before the budget boundary.
#[test]
fn deadlock_beats_a_generous_watchdog() {
    let prog = unbalanced_handshake(4);
    let mut outs = Vec::new();
    for engine in ALL_ENGINES {
        let (out, _) = try_engine(&prog, engine, 2, 2, &[1], None, Some(1 << 20));
        assert!(
            matches!(out, Err(SimError::Deadlock { .. })),
            "{engine:?}: expected deadlock, got {out:?}"
        );
        outs.push(out);
    }
    assert!(outs.windows(2).all(|w| w[0] == w[1]), "engines disagreed");
}
