//! Property tests for the MTA engine: on arbitrary straight-line ALU
//! programs the event-driven, stream-interleaved engine must compute
//! exactly what a trivial sequential reference interpreter computes, and
//! its accounting invariants must hold for any program.

use proptest::prelude::*;

use archgraph_core::MtaParams;
use archgraph_mta_sim::asm::assemble;
use archgraph_mta_sim::isa::{ProgramBuilder, Reg, NREGS};
use archgraph_mta_sim::machine::MtaMachine;

/// A generatable straight-line operation (no control flow, no sync).
#[derive(Debug, Clone, Copy)]
enum FlatOp {
    Li(u8, i8),
    Mov(u8, u8),
    Add(u8, u8, u8),
    AddI(u8, u8, i8),
    Sub(u8, u8, u8),
    Mul(u8, u8, u8),
    Load(u8, u8),
    Store(u8, u8),
    FetchAdd(u8, u8),
}

const MEM_WORDS: usize = 32;

fn reg() -> impl Strategy<Value = u8> {
    2u8..8u8 // stay clear of r0/r1 conventions
}

fn flat_op() -> impl Strategy<Value = FlatOp> {
    prop_oneof![
        (reg(), any::<i8>()).prop_map(|(d, i)| FlatOp::Li(d, i)),
        (reg(), reg()).prop_map(|(d, s)| FlatOp::Mov(d, s)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| FlatOp::Add(d, a, b)),
        (reg(), reg(), any::<i8>()).prop_map(|(d, a, i)| FlatOp::AddI(d, a, i)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| FlatOp::Sub(d, a, b)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| FlatOp::Mul(d, a, b)),
        (reg(), 0u8..MEM_WORDS as u8).prop_map(|(d, a)| FlatOp::Load(d, a)),
        (reg(), 0u8..MEM_WORDS as u8).prop_map(|(s, a)| FlatOp::Store(s, a)),
        (reg(), 0u8..MEM_WORDS as u8).prop_map(|(d, a)| FlatOp::FetchAdd(d, a)),
    ]
}

fn lower(ops: &[FlatOp]) -> archgraph_mta_sim::isa::Program {
    let mut b = ProgramBuilder::new();
    for &op in ops {
        match op {
            FlatOp::Li(d, i) => b.li(Reg(d), i as i64),
            FlatOp::Mov(d, s) => b.mov(Reg(d), Reg(s)),
            FlatOp::Add(d, a, x) => b.add(Reg(d), Reg(a), Reg(x)),
            FlatOp::AddI(d, a, i) => b.addi(Reg(d), Reg(a), i as i64),
            FlatOp::Sub(d, a, x) => b.sub(Reg(d), Reg(a), Reg(x)),
            FlatOp::Mul(d, a, x) => b.mul(Reg(d), Reg(a), Reg(x)),
            FlatOp::Load(d, a) => b.load_abs(Reg(d), a as usize),
            FlatOp::Store(s, a) => b.store_abs(Reg(s), a as usize),
            FlatOp::FetchAdd(d, a) => {
                // delta register is the destination's old value source: use r2.
                b.fetch_add_imm(Reg(d), a as i64, Reg(2))
            }
        };
    }
    b.halt();
    b.build()
}

/// Reference interpreter: one stream, sequential, no timing.
fn reference(ops: &[FlatOp], mem: &mut [i64]) -> [i64; NREGS] {
    let mut r = [0i64; NREGS];
    r[1] = 0; // stream id of the single stream
    for &op in ops {
        match op {
            FlatOp::Li(d, i) => r[d as usize] = i as i64,
            FlatOp::Mov(d, s) => r[d as usize] = r[s as usize],
            FlatOp::Add(d, a, b) => r[d as usize] = r[a as usize].wrapping_add(r[b as usize]),
            FlatOp::AddI(d, a, i) => r[d as usize] = r[a as usize].wrapping_add(i as i64),
            FlatOp::Sub(d, a, b) => r[d as usize] = r[a as usize].wrapping_sub(r[b as usize]),
            FlatOp::Mul(d, a, b) => r[d as usize] = r[a as usize].wrapping_mul(r[b as usize]),
            FlatOp::Load(d, a) => r[d as usize] = mem[a as usize],
            FlatOp::Store(s, a) => mem[a as usize] = r[s as usize],
            FlatOp::FetchAdd(d, a) => {
                let old = mem[a as usize];
                mem[a as usize] = old.wrapping_add(r[2]);
                r[d as usize] = old;
            }
        }
        r[0] = 0;
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disassembly_assembles_back_to_the_same_program(
        ops in proptest::collection::vec(flat_op(), 0..50)
    ) {
        let p1 = lower(&ops);
        let p2 = assemble(&p1.disassemble()).expect("disassembly must re-assemble");
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn single_stream_matches_reference(ops in proptest::collection::vec(flat_op(), 0..60)) {
        // Engine run.
        let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), 1, 64);
        m.memory_mut().alloc(MEM_WORDS);
        let prog = lower(&ops);
        // Observe final registers through memory: append stores of every
        // register... instead, compare memory only (registers die with the
        // stream). Stores/fetch_adds make memory a sufficient witness; to
        // strengthen it, dump r2..r8 to scratch words at the end.
        let mut b = ProgramBuilder::new();
        for i in prog.instrs().iter().take(prog.len() - 1) {
            b.push(*i);
        }
        for (k, rr) in (2u8..8).enumerate() {
            b.store_abs(Reg(rr), MEM_WORDS + k);
        }
        b.halt();
        let prog = b.build();
        m.run(&prog, 1, |_, _| {});

        // Reference run.
        let mut mem = vec![0i64; MEM_WORDS];
        let regs = reference(&ops, &mut mem);

        for (a, &expect) in mem.iter().enumerate() {
            prop_assert_eq!(m.memory().peek(a), expect, "memory word {}", a);
        }
        for (k, rr) in (2usize..8).enumerate() {
            prop_assert_eq!(m.memory().peek(MEM_WORDS + k), regs[rr], "r{}", rr);
        }
    }

    #[test]
    fn accounting_invariants_hold(ops in proptest::collection::vec(flat_op(), 0..40), streams in 1usize..8) {
        let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), 2, 64);
        m.memory_mut().alloc(MEM_WORDS);
        let prog = lower(&ops);
        let rep = m.run(&prog, streams, |_, _| {});
        let total_streams = 2 * streams as u64;
        // Every stream executes every instruction exactly once.
        prop_assert_eq!(rep.issued, prog.len() as u64 * total_streams);
        // Thirds: memory ops cost 3, the rest 1.
        let mem_ops = ops.iter().filter(|o| matches!(o,
            FlatOp::Load(..) | FlatOp::Store(..) | FlatOp::FetchAdd(..))).count() as u64;
        let expect_thirds = total_streams * (mem_ops * 3 + (prog.len() as u64 - mem_ops));
        prop_assert_eq!(rep.issued_thirds, expect_thirds);
        // Utilization bounded; op-mix sums to issued.
        prop_assert!(rep.utilization >= 0.0 && rep.utilization <= 1.0 + 1e-12);
        prop_assert_eq!(rep.op_mix.iter().sum::<u64>(), rep.issued);
        // Memory counters match the op counts.
        let loads = ops.iter().filter(|o| matches!(o, FlatOp::Load(..))).count() as u64;
        let stores = ops.iter().filter(|o| matches!(o, FlatOp::Store(..))).count() as u64;
        let faas = ops.iter().filter(|o| matches!(o, FlatOp::FetchAdd(..))).count() as u64;
        prop_assert_eq!(rep.mem.loads, loads * total_streams);
        // +6 register-dump stores? No: this test lowers without the dump.
        prop_assert_eq!(rep.mem.stores, stores * total_streams);
        prop_assert_eq!(rep.mem.fetch_adds, faas * total_streams);
    }
}
