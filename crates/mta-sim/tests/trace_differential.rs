//! Differential suite: the trace-batched engine and the threaded-code
//! (compiled) engine must both be *schedule preserving* — on every
//! program, bit-identical to the single-step oracle in the full
//! [`RunReport`] (cycles, issued, thirds, op mix, memory counters, sync
//! retries) and in the final memory image.
//!
//! Programs come from two sources:
//!
//! * property tests over structured random kernels (straight-line runs,
//!   bounded countdown loops, forward skips, loads/stores/`int_fetch_add`)
//!   across processor/stream combinations;
//! * hand-built kernels in the shape of the paper's Fig. 1 (list-walk)
//!   and Fig. 2 (edge-scan) inner loops.
//!
//! Any counterexample proptest ever finds should be pinned as a named
//! regression test at the bottom of this file.

use proptest::prelude::*;

use archgraph_core::MtaParams;
use archgraph_mta_sim::isa::{Program, ProgramBuilder, Reg};
use archgraph_mta_sim::machine::{with_workers, MtaEngine, MtaMachine};
use archgraph_mta_sim::report::RunReport;

const MEM_WORDS: usize = 48;

/// Run `prog` under one engine; return the report and final memory image.
fn run_engine(
    prog: &Program,
    engine: MtaEngine,
    p: usize,
    streams: usize,
    mem_init: &[i64],
) -> (RunReport, Vec<i64>) {
    let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), p, 1 << 12);
    let base = m.memory_mut().alloc(MEM_WORDS);
    assert_eq!(base, 0);
    for (a, &v) in mem_init.iter().enumerate() {
        m.memory_mut().poke(a, v);
    }
    m.set_engine(engine);
    let rep = m.run(prog, streams, |_, _| {});
    (rep, m.memory().peek_slice(0, MEM_WORDS))
}

/// The engines checked against the single-step oracle. Partitioned runs
/// at the ambient worker count here (the host's parallelism); the
/// explicit `W ∈ {1, 2, 4, 8}` sweep is pinned further down.
const FAST_ENGINES: [MtaEngine; 3] = [
    MtaEngine::Trace,
    MtaEngine::Compiled,
    MtaEngine::Partitioned,
];

/// Assert all engines agree on `prog` for several machine shapes.
fn assert_schedule_preserved(prog: &Program, mem_init: &[i64]) {
    for &(p, streams) in &[(1usize, 1usize), (1, 4), (2, 3), (2, 8)] {
        let (rs, ms) = run_engine(prog, MtaEngine::SingleStep, p, streams, mem_init);
        for engine in FAST_ENGINES {
            let (rt, mt) = run_engine(prog, engine, p, streams, mem_init);
            assert_eq!(
                rt, rs,
                "{engine:?} report diverged at p={p} streams={streams}"
            );
            assert_eq!(
                mt, ms,
                "{engine:?} memory diverged at p={p} streams={streams}"
            );
        }
    }
}

/// A generatable operation for kernel bodies (no control flow here;
/// loops and skips are added structurally so programs always terminate).
#[derive(Debug, Clone, Copy)]
enum BodyOp {
    Li(u8, i8),
    Mov(u8, u8),
    Add(u8, u8, u8),
    AddI(u8, u8, i8),
    Sub(u8, u8, u8),
    Mul(u8, u8, u8),
    Load(u8, u8),
    Store(u8, u8),
    FetchAdd(u8, u8),
}

fn reg() -> impl Strategy<Value = u8> {
    2u8..8u8
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (reg(), any::<i8>()).prop_map(|(d, i)| BodyOp::Li(d, i)),
        (reg(), reg()).prop_map(|(d, s)| BodyOp::Mov(d, s)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| BodyOp::Add(d, a, b)),
        (reg(), reg(), any::<i8>()).prop_map(|(d, a, i)| BodyOp::AddI(d, a, i)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| BodyOp::Sub(d, a, b)),
        (reg(), reg(), reg()).prop_map(|(d, a, b)| BodyOp::Mul(d, a, b)),
        (reg(), 0u8..MEM_WORDS as u8).prop_map(|(d, a)| BodyOp::Load(d, a)),
        (reg(), 0u8..MEM_WORDS as u8).prop_map(|(s, a)| BodyOp::Store(s, a)),
        (reg(), 0u8..MEM_WORDS as u8).prop_map(|(d, a)| BodyOp::FetchAdd(d, a)),
    ]
}

/// One structural segment of a generated kernel.
#[derive(Debug, Clone)]
enum Segment {
    /// Straight-line body ops.
    Flat(Vec<BodyOp>),
    /// A countdown loop: `iters` trips over the body (backward branch).
    Loop(u8, Vec<BodyOp>),
    /// A data-dependent forward skip over the body (`beq r_a, r_b`).
    Skip(u8, u8, Vec<BodyOp>),
}

fn body() -> impl Strategy<Value = Vec<BodyOp>> {
    proptest::collection::vec(body_op(), 1..8)
}

fn segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        body().prop_map(Segment::Flat),
        (1u8..5, body()).prop_map(|(k, b)| Segment::Loop(k, b)),
        (reg(), reg(), body()).prop_map(|(a, b, ops)| Segment::Skip(a, b, ops)),
    ]
}

fn emit_body(b: &mut ProgramBuilder, ops: &[BodyOp]) {
    for &op in ops {
        match op {
            BodyOp::Li(d, i) => b.li(Reg(d), i as i64),
            BodyOp::Mov(d, s) => b.mov(Reg(d), Reg(s)),
            BodyOp::Add(d, a, x) => b.add(Reg(d), Reg(a), Reg(x)),
            BodyOp::AddI(d, a, i) => b.addi(Reg(d), Reg(a), i as i64),
            BodyOp::Sub(d, a, x) => b.sub(Reg(d), Reg(a), Reg(x)),
            BodyOp::Mul(d, a, x) => b.mul(Reg(d), Reg(a), Reg(x)),
            BodyOp::Load(d, a) => b.load_abs(Reg(d), a as usize),
            BodyOp::Store(s, a) => b.store_abs(Reg(s), a as usize),
            BodyOp::FetchAdd(d, a) => b.fetch_add_imm(Reg(d), a as i64, Reg(2)),
        };
    }
}

/// Lower segments to a program. Loops use r9 as the trip counter so the
/// generated bodies (r2..r7) cannot clobber it.
fn lower(segments: &[Segment]) -> Program {
    let mut b = ProgramBuilder::new();
    for seg in segments {
        match seg {
            Segment::Flat(ops) => emit_body(&mut b, ops),
            Segment::Loop(k, ops) => {
                b.li(Reg(9), *k as i64);
                let top = b.here();
                emit_body(&mut b, ops);
                b.addi(Reg(9), Reg(9), -1);
                b.bne(Reg(9), Reg(0), top);
            }
            Segment::Skip(x, y, ops) => {
                let fx = b.beq_fwd(Reg(*x), Reg(*y));
                emit_body(&mut b, ops);
                b.bind(fx);
            }
        }
    }
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_on_random_kernels(
        segments in proptest::collection::vec(segment(), 0..6),
        mem_init in proptest::collection::vec(-4i64..5, MEM_WORDS..MEM_WORDS + 1),
    ) {
        let prog = lower(&segments);
        for &(p, streams) in &[(1usize, 3usize), (2, 5)] {
            let (rs, ms) = run_engine(&prog, MtaEngine::SingleStep, p, streams, &mem_init);
            for engine in FAST_ENGINES {
                let (rt, mt) = run_engine(&prog, engine, p, streams, &mem_init);
                prop_assert_eq!(
                    &rt, &rs,
                    "{:?} report diverged at p={} streams={}", engine, p, streams
                );
                prop_assert_eq!(
                    &mt, &ms,
                    "{:?} memory diverged at p={} streams={}", engine, p, streams
                );
            }
        }
    }
}

/// Fig. 1-shaped kernel: each stream claims a node by `int_fetch_add`,
/// then chases `next[]` pointers until it hits a marked node, counting
/// hops — the paper's list-walk inner loop (load-load-branch per step).
#[test]
fn fig1_walk_kernel_golden() {
    // Memory layout: [0] claim counter, [1] hop-count accumulator,
    // [2..2+n] next-pointer array (a ring offset by +2), marks at ring
    // positions divisible by 4 encoded as next = 0 (sentinel).
    let n = 24i64;
    let mut mem = vec![0i64; MEM_WORDS];
    for i in 0..n {
        let succ = (i + 1) % n;
        mem[(2 + i) as usize] = if succ % 4 == 0 { 0 } else { 2 + succ };
    }
    let mut b = ProgramBuilder::new();
    let (i, one, lim, j, c) = (Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(one, 1).li(lim, n);
    let claim = b.here();
    b.fetch_add_imm(i, 0, one);
    let done = b.bge_fwd(i, lim);
    b.addi(j, i, 2); // node address
    let walk = b.here();
    b.load(j, j, 0); // j = next[j]
    b.beq(j, Reg(0), claim); // sentinel: walk done, claim another
    b.fetch_add_imm(c, 1, one); // count the hop
    b.jmp(walk);
    b.bind(done);
    b.halt();
    let prog = b.build();
    assert_schedule_preserved(&prog, &mem);
}

/// Fig. 2-shaped kernel: scan an edge list, and for each edge compare
/// component labels and conditionally store — the paper's Shiloach-Vishkin
/// graft step (load-load-compare-store per edge).
#[test]
fn fig2_graft_kernel_golden() {
    // Memory: [0] edge claim counter, edges at [2..2+2m] as (u,v) pairs,
    // labels D[] at [30..30+8].
    let m_edges = 10i64;
    let mut mem = vec![0i64; MEM_WORDS];
    for e in 0..m_edges {
        mem[(2 + 2 * e) as usize] = (e * 3) % 8;
        mem[(3 + 2 * e) as usize] = (e * 5 + 1) % 8;
    }
    for v in 0..8 {
        mem[30 + v as usize] = v;
    }
    let mut b = ProgramBuilder::new();
    let (e, one, lim, u, v, du, dv) = (Reg(2), Reg(3), Reg(4), Reg(5), Reg(6), Reg(7), Reg(8));
    b.li(one, 1).li(lim, m_edges);
    let top = b.here();
    b.fetch_add_imm(e, 0, one);
    let done = b.bge_fwd(e, lim);
    b.add(u, e, e); // 2e
    b.load(v, u, 3); // v = mem[2e + 3]
    b.load(u, u, 2); // u = mem[2e + 2]
    b.load(du, u, 30);
    b.load(dv, v, 30);
    let no_graft = b.bge_fwd(du, dv);
    b.store(du, v, 30); // D[v] = D[u] when D[u] < D[v] (racy, like Alg. 3)
    b.bind(no_graft);
    b.jmp(top);
    b.bind(done);
    b.halt();
    let prog = b.build();
    assert_schedule_preserved(&prog, &mem);
}

// ---------------------------------------------------------------------------
// Pinned regressions: hand-reduced cases that exercise batch-path edges.
// ---------------------------------------------------------------------------

/// A lone backward branch (run_len 1, tail): batchable via its taken edge.
#[test]
fn pinned_lone_branch_countdown() {
    let mut b = ProgramBuilder::new();
    b.li(Reg(2), 50);
    let top = b.here();
    b.addi(Reg(2), Reg(2), -1);
    b.bne(Reg(2), Reg(0), top);
    b.halt();
    let prog = b.build();
    assert_schedule_preserved(&prog, &[]);
}

/// Halt inside a batched run must count as issued, then stop the stream.
#[test]
fn pinned_halt_terminates_batch() {
    let mut b = ProgramBuilder::new();
    b.li(Reg(2), 1).add(Reg(3), Reg(2), Reg(2)).halt();
    let prog = b.build();
    assert_schedule_preserved(&prog, &[]);
}

/// A straight-line run longer than the decoder's `u8` saturation (255):
/// the truncated run must re-enter the batcher mid-trace and stay exact.
#[test]
fn pinned_run_longer_than_saturation() {
    let mut b = ProgramBuilder::new();
    b.li(Reg(2), 0);
    for k in 0..300 {
        b.addi(Reg(2), Reg(2), k % 7);
    }
    b.store_abs(Reg(2), 0).halt();
    let prog = b.build();
    assert_schedule_preserved(&prog, &[0]);
}

/// A load feeding the next run's use-set: the batcher must refuse to run
/// past the not-yet-arrived register rather than issue early.
#[test]
fn pinned_load_use_blocks_batch() {
    let mut b = ProgramBuilder::new();
    b.li(Reg(2), 5).store_abs(Reg(2), 3);
    b.load_abs(Reg(4), 3);
    b.add(Reg(5), Reg(4), Reg(4)); // needs the load
    b.addi(Reg(5), Reg(5), 1);
    b.store_abs(Reg(5), 4);
    b.halt();
    let prog = b.build();
    assert_schedule_preserved(&prog, &[0, 0, 0, 0, 0]);
}

/// Full/empty producer-consumer handshake: `writeef` / `readfe` retries
/// and word-hotspot serialization must schedule identically under every
/// engine (the generated kernels never emit sync ops, so this pins the
/// sync paths explicitly).
#[test]
fn pinned_sync_handshake() {
    // mem[1] starts empty; the lower half of the streams produce into it,
    // the upper half consume from it and accumulate into mem[4] via
    // fetch_add. The program is built per machine shape so producers and
    // consumers are exactly balanced (else the extras retry forever).
    let build = |total: i64| {
        let mut b = ProgramBuilder::new();
        let (v, half, t) = (Reg(2), Reg(3), Reg(5));
        b.li(half, total / 2);
        b.mul(v, Reg(1), Reg(1)); // per-stream payload
        let consumer = b.bge_fwd(Reg(1), half);
        b.writeef(v, Reg(0), 1);
        b.halt();
        b.bind(consumer);
        b.readfe(v, Reg(0), 1);
        b.fetch_add_imm(t, 4, v);
        b.halt();
        b.build()
    };
    for &(p, streams) in &[(1usize, 2usize), (2, 4), (2, 8)] {
        let prog = build((p * streams) as i64);
        let (rs, ms) = {
            let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), p, 1 << 12);
            m.memory_mut().alloc(MEM_WORDS);
            m.memory_mut().set_empty(1);
            m.set_engine(MtaEngine::SingleStep);
            let rep = m.run(&prog, streams, |_, _| {});
            (rep, m.memory().peek_slice(0, MEM_WORDS))
        };
        for engine in FAST_ENGINES {
            let mut m = MtaMachine::with_memory_words(MtaParams::tiny_for_tests(), p, 1 << 12);
            m.memory_mut().alloc(MEM_WORDS);
            m.memory_mut().set_empty(1);
            m.set_engine(engine);
            let rep = m.run(&prog, streams, |_, _| {});
            assert_eq!(rep, rs, "{engine:?} report diverged at p={p} s={streams}");
            assert_eq!(
                m.memory().peek_slice(0, MEM_WORDS),
                ms,
                "{engine:?} memory diverged at p={p} s={streams}"
            );
            assert!(rep.mem.sync_ops > 0, "handshake must use sync ops");
        }
    }
}

/// The partitioned engine must be bit-identical to the oracle at every
/// worker count, including counts above the processor count (clamped)
/// and `W = 1` (the windowed loop without threads). Exercises the
/// memory-heavy golden kernels where suspensions, provisional
/// fetch-add completions, and the window merge all fire.
#[test]
fn partitioned_matches_oracle_across_worker_counts() {
    // Fig. 1-shaped list walk (see `fig1_walk_kernel_golden`).
    let n = 24i64;
    let mut mem = vec![0i64; MEM_WORDS];
    for i in 0..n {
        let succ = (i + 1) % n;
        mem[(2 + i) as usize] = if succ % 4 == 0 { 0 } else { 2 + succ };
    }
    let mut b = ProgramBuilder::new();
    let (i, one, lim, j, c) = (Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
    b.li(one, 1).li(lim, n);
    let claim = b.here();
    b.fetch_add_imm(i, 0, one);
    let done = b.bge_fwd(i, lim);
    b.addi(j, i, 2);
    let walk = b.here();
    b.load(j, j, 0);
    b.beq(j, Reg(0), claim);
    b.fetch_add_imm(c, 1, one);
    b.jmp(walk);
    b.bind(done);
    b.halt();
    let prog = b.build();

    for &(p, streams) in &[(1usize, 4usize), (2, 3), (3, 8), (8, 8)] {
        let (rs, ms) = run_engine(&prog, MtaEngine::SingleStep, p, streams, &mem);
        for w in [1usize, 2, 4, 8] {
            let (rp, mp) = with_workers(w, || {
                run_engine(&prog, MtaEngine::Partitioned, p, streams, &mem)
            });
            assert_eq!(
                rp, rs,
                "partitioned report diverged at p={p} streams={streams} workers={w}"
            );
            assert_eq!(
                mp, ms,
                "partitioned memory diverged at p={p} streams={streams} workers={w}"
            );
        }
    }
}

/// Forward skip taken vs not taken, diverging by stream id: streams pick
/// different paths, so the batcher follows different taken edges per
/// stream while the oracle interleaves them.
#[test]
fn pinned_stream_dependent_skip() {
    let mut b = ProgramBuilder::new();
    let fx = b.bne_fwd(Reg(1), Reg(0)); // stream 0 falls through
    b.li(Reg(2), 7).store_abs(Reg(2), 0);
    b.bind(fx);
    b.addi(Reg(3), Reg(1), 10);
    b.store(Reg(3), Reg(1), 8);
    b.halt();
    let prog = b.build();
    assert_schedule_preserved(&prog, &[]);
}
