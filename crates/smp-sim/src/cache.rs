//! A parameterized set-associative cache with LRU replacement.
//!
//! Used for both levels of the simulated hierarchy: the UltraSPARC-II-style
//! direct-mapped L1 is the `assoc = 1` special case. The cache tracks only
//! tags (the simulator never stores data — algorithms run on host memory),
//! so a 4 MB simulated L2 costs a few hundred kilobytes of host memory.

/// Hit/miss counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.hits as f64 / a as f64
        }
    }
}

/// A set-associative tag cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    /// log2(line size in bytes).
    line_shift: u32,
    /// Number of sets (power of two).
    sets: usize,
    /// Associativity.
    assoc: usize,
    /// `ways[set * assoc + way]` = line address tag or `u64::MAX` (empty).
    /// Way order within a set is LRU: index 0 is most recent.
    ways: Vec<u64>,
    /// Counters.
    pub stats: CacheStats,
}

const EMPTY: u64 = u64::MAX;

impl Cache {
    /// Build a cache of `capacity_bytes` with `line_bytes` lines and
    /// `assoc`-way sets. Capacity and line size must be powers of two and
    /// consistent (`capacity = sets × assoc × line`).
    pub fn new(capacity_bytes: usize, line_bytes: usize, assoc: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc >= 1);
        assert!(
            capacity_bytes.is_multiple_of(line_bytes * assoc),
            "capacity {capacity_bytes} not divisible by line {line_bytes} x assoc {assoc}"
        );
        let sets = capacity_bytes / (line_bytes * assoc);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            line_shift: line_bytes.trailing_zeros(),
            sets,
            assoc,
            ways: vec![EMPTY; sets * assoc],
            stats: CacheStats::default(),
        }
    }

    /// The line address (byte address with the offset bits dropped).
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Access the line containing `addr`; updates LRU and counters and
    /// returns `true` on hit. On miss the line is installed (allocate on
    /// read *and* write — write-allocate policy).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Move to MRU position.
            ways[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            // Evict LRU (last way), install at MRU.
            ways.rotate_right(1);
            ways[0] = line;
            self.stats.misses += 1;
            false
        }
    }

    /// Install a line without counting an access (used when a prefetch or
    /// a lower-level fill brings a line in).
    pub fn install(&mut self, addr: u64) {
        let line = self.line_of(addr);
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            ways[..=pos].rotate_right(1);
        } else {
            ways.rotate_right(1);
            ways[0] = line;
        }
    }

    /// True if the line containing `addr` is currently resident (no LRU or
    /// counter side effects).
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.assoc;
        self.ways[base..base + self.assoc].contains(&line)
    }

    /// Drop all contents, keep counters.
    pub fn flush(&mut self) {
        self.ways.fill(EMPTY);
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.assoc * (1usize << self.line_shift)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1usize << self.line_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_invariants() {
        let c = Cache::new(1024, 64, 2);
        assert_eq!(c.capacity_bytes(), 1024);
        assert_eq!(c.line_bytes(), 64);
        assert_eq!(c.sets, 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_line() {
        Cache::new(1024, 48, 1);
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = Cache::new(1024, 64, 1);
        assert!(!c.access(0));
        assert!(c.access(32), "same 64B line");
        assert!(!c.access(64), "next line misses");
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        // 1024B / 64B direct mapped = 16 sets; addresses 0 and 1024 collide.
        let mut c = Cache::new(1024, 64, 1);
        assert!(!c.access(0));
        assert!(!c.access(1024));
        assert!(!c.access(0), "evicted by the conflicting line");
    }

    #[test]
    fn two_way_avoids_simple_conflict() {
        let mut c = Cache::new(2048, 64, 2);
        assert!(!c.access(0));
        assert!(!c.access(2048)); // same set, second way
        assert!(c.access(0), "both lines fit in a 2-way set");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = Cache::new(2048, 64, 2);
        // 16 sets; lines 0, 16, 32 (line numbers) map to set 0.
        let a = 0u64;
        let b = 16 * 64;
        let d = 32 * 64;
        c.access(a);
        c.access(b);
        c.access(a); // a is MRU now
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn install_does_not_count() {
        let mut c = Cache::new(1024, 64, 1);
        c.install(0);
        assert_eq!(c.stats.accesses(), 0);
        assert!(c.access(0), "installed line hits");
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut c = Cache::new(1024, 64, 1);
        assert!(!c.probe(0));
        assert_eq!(c.stats.accesses(), 0);
        c.access(0);
        assert!(c.probe(0));
        assert_eq!(c.stats.accesses(), 1);
    }

    #[test]
    fn flush_clears_content_keeps_stats() {
        let mut c = Cache::new(1024, 64, 1);
        c.access(0);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = Cache::new(1024, 64, 1);
        assert_eq!(c.stats.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_scan_hit_rate_matches_line_geometry() {
        // Scanning 4-byte elements with 64B lines: 15 hits per 16 accesses.
        let mut c = Cache::new(16 * 1024, 64, 1);
        for i in 0..4096u64 {
            c.access(i * 4);
        }
        assert_eq!(c.stats.misses, 4096 / 16);
        assert_eq!(c.stats.hits, 4096 - 4096 / 16);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        // Repeatedly scan 2x the capacity: with LRU every access misses
        // after the first pass too.
        let mut c = Cache::new(1024, 64, 2);
        let lines = 2 * 1024 / 64;
        for _round in 0..3 {
            for l in 0..lines as u64 {
                c.access(l * 64);
            }
        }
        assert_eq!(c.stats.hits, 0, "LRU cyclic scan of 2x capacity never hits");
    }
}
