//! # archgraph-smp-sim
//!
//! A trace-driven, cycle-accounting simulator of a cache-based symmetric
//! multiprocessor in the class of the paper's Sun Enterprise E4500
//! (§2.1): in-order cache microprocessors, a two-level cache hierarchy
//! (small direct-mapped on-chip L1, large external L2), a shared bus to
//! UMA main memory, and **software** barriers.
//!
//! ## Why a simulator
//!
//! The paper's SMP observations are mechanistic cache effects: ordered
//! traversals amortize one line fill over `line/4` elements and engage
//! stream prefetching, random traversals pay a full memory round trip per
//! dependent load, and every algorithm phase ends in a software barrier
//! whose cost grows with `p`. This crate reproduces exactly those
//! mechanisms and nothing more — it is *not* a microarchitectural model of
//! the UltraSPARC-II pipeline.
//!
//! ## Programming model
//!
//! Algorithms are written SPMD-style: a [`machine::SmpMachine`] runs a
//! sequence of *phases*; within a phase, each of the `p` processors
//! executes a closure against its own [`machine::ProcCtx`], issuing
//! simulated `read`/`write`/`compute` operations while performing the real
//! computation on host data. A barrier is charged between phases. The
//! phase time is the slowest processor's cycle count, stretched if the
//! phase's aggregate line traffic exceeds the shared bus bandwidth.
//!
//! ```
//! use archgraph_core::SmpParams;
//! use archgraph_smp_sim::machine::SmpMachine;
//!
//! let mut m = SmpMachine::new(SmpParams::tiny_for_tests(), 2);
//! let xs = m.alloc_elems::<u32>(1024);
//! m.phase("touch", |proc, ctx| {
//!     // Each processor strides over its half of the array.
//!     let (lo, hi) = (proc * 512, (proc + 1) * 512);
//!     for i in lo..hi {
//!         ctx.read_elem(xs, i);
//!         ctx.compute(2);
//!     }
//! });
//! assert!(m.seconds() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod machine;
pub mod prefetch;
pub mod stats;
pub mod tlb;

pub use archgraph_core::SimError;
pub use machine::{ArrayAddr, ProcCtx, SmpMachine};
pub use stats::RunStats;
