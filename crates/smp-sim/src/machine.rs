//! The SPMD phase machine: per-processor cache stacks, a shared bus, and
//! software barriers.
//!
//! Time accounting follows the cost model's structure: within a phase each
//! processor accumulates cycles independently (compute + memory stalls);
//! the phase costs the machine the *slowest* processor's time, stretched
//! to the bus-transfer time if the phase moved more lines than the shared
//! bus could carry; and each [`SmpMachine::phase`] ends in one software
//! barrier whose cost grows with `p` (§2.1: "locks and barriers are
//! typically implemented in software").

use crate::cache::Cache;
use crate::prefetch::Prefetcher;
use crate::stats::RunStats;
use crate::tlb::Tlb;
use archgraph_core::error::configured_max_cycles;
use archgraph_core::{FaultPlan, SimError, SmpParams};

/// Base address and element size of a simulated array allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayAddr {
    /// Byte address of element 0.
    pub base: u64,
    /// Size of one element in bytes.
    pub elem_bytes: u64,
}

impl ArrayAddr {
    /// Byte address of element `idx`.
    pub fn addr(&self, idx: usize) -> u64 {
        self.base + self.elem_bytes * idx as u64
    }
}

/// Per-processor simulation state: the cache hierarchy and cycle clock.
#[derive(Debug)]
pub struct ProcCtx {
    l1: Cache,
    l2: Cache,
    prefetch: Prefetcher,
    tlb: Tlb,
    params: SmpParams,
    /// This processor's machine-wide index (stall windows key on it).
    proc: usize,
    /// The structural subset of the ambient fault plan: per-processor
    /// stalls and brownouts apply to the SMP machine; the address-keyed
    /// axis and degraded links are MTA-only (the SMP model has no
    /// tag bits and no per-shard network). Captured at machine
    /// construction so [`archgraph_core::with_fault_plan`] scoping works.
    fault: Option<FaultPlan>,
    /// Cycle clock (monotone across the whole run; phases diff it).
    clock: f64,
    compute_cycles: f64,
    mem_stall_cycles: f64,
    tlb_stall_cycles: f64,
    instructions: u64,
    loads: u64,
    stores: u64,
    l1_hits: u64,
    l2_hits: u64,
    mem_accesses: u64,
    bus_lines: u64,
}

impl ProcCtx {
    fn new(params: &SmpParams, proc: usize, fault: Option<FaultPlan>) -> Self {
        ProcCtx {
            l1: Cache::new(params.l1_bytes, params.line_bytes, params.l1_assoc),
            l2: Cache::new(params.l2_bytes, params.line_bytes, params.l2_assoc),
            prefetch: Prefetcher::new(params.prefetch_streams, params.prefetch_trigger),
            tlb: Tlb::new(params.tlb_entries, params.page_bytes),
            params: params.clone(),
            proc,
            fault,
            clock: 0.0,
            compute_cycles: 0.0,
            mem_stall_cycles: 0.0,
            tlb_stall_cycles: 0.0,
            instructions: 0,
            loads: 0,
            stores: 0,
            l1_hits: 0,
            l2_hits: 0,
            mem_accesses: 0,
            bus_lines: 0,
        }
    }

    /// Push the clock to the end of the current stall window, if this
    /// processor sits in one. Stalled time is idle time: it stretches the
    /// clock but lands in none of the busy-cycle buckets.
    #[inline]
    fn fault_stall(&mut self) {
        if let Some(f) = &self.fault {
            if f.has_stalls() {
                self.clock = f.stall_adjust_cycles(self.proc, self.clock);
            }
        }
    }

    /// The machine-wide brownout multiplier on main-memory charges at the
    /// current clock (1.0 when no brownout is in effect).
    #[inline]
    fn brownout_mult(&self) -> f64 {
        self.fault
            .as_ref()
            .map_or(1.0, |f| f.brownout_mult_at_cycle(self.clock))
    }

    /// Simulated load from a byte address. Charges L1/L2/memory latency
    /// according to residency (plus a TLB-miss trap when the page is not
    /// mapped); trains the stream prefetcher on misses.
    pub fn read(&mut self, addr: u64) {
        self.fault_stall();
        self.loads += 1;
        if !self.tlb.access(addr) {
            self.clock += self.params.tlb_miss_cycles as f64;
            self.tlb_stall_cycles += self.params.tlb_miss_cycles as f64;
        }
        let stall0 = self.clock;
        if self.l1.access(addr) {
            self.l1_hits += 1;
            self.clock += self.params.l1_latency as f64;
        } else if self.l2.access(addr) {
            self.l2_hits += 1;
            self.clock += self.params.l2_latency as f64;
            self.l1.install(addr);
        } else {
            self.mem_accesses += 1;
            self.bus_lines += 1;
            let line = addr / self.params.line_bytes as u64;
            // Main-memory charges stretch under a brownout; cache hits
            // do not (the brownout models the memory system, not the
            // processor-side hierarchy).
            let mult = self.brownout_mult();
            if self.prefetch.on_miss(line) {
                // The stream prefetcher had the line in flight; the
                // processor sees roughly an L2 fill.
                self.clock += self.params.l2_latency as f64 * mult;
            } else {
                self.clock += self.params.mem_latency as f64 * mult;
            }
            self.l1.install(addr);
            self.l2.install(addr);
        }
        self.mem_stall_cycles += self.clock - stall0;
    }

    /// Simulated store to a byte address (write-allocate, write-back; a
    /// store missing all caches stalls for `store_miss_cycles` — store
    /// buffers hide part of the round trip — and moves two bus lines:
    /// the allocation fill and the eventual write-back).
    pub fn write(&mut self, addr: u64) {
        self.fault_stall();
        self.stores += 1;
        if !self.tlb.access(addr) {
            self.clock += self.params.tlb_miss_cycles as f64;
            self.tlb_stall_cycles += self.params.tlb_miss_cycles as f64;
        }
        let stall0 = self.clock;
        if self.l1.access(addr) {
            self.l1_hits += 1;
            self.clock += self.params.l1_latency as f64;
        } else if self.l2.access(addr) {
            self.l2_hits += 1;
            self.clock += self.params.l2_latency as f64;
            self.l1.install(addr);
        } else {
            self.mem_accesses += 1;
            self.bus_lines += 2;
            self.clock += self.params.store_miss_cycles as f64 * self.brownout_mult();
            self.l1.install(addr);
            self.l2.install(addr);
        }
        self.mem_stall_cycles += self.clock - stall0;
    }

    /// Load element `idx` of a simulated array.
    pub fn read_elem(&mut self, arr: ArrayAddr, idx: usize) {
        self.read(arr.addr(idx));
    }

    /// Store to element `idx` of a simulated array.
    pub fn write_elem(&mut self, arr: ArrayAddr, idx: usize) {
        self.write(arr.addr(idx));
    }

    /// Charge `n` non-memory instructions at the effective CPI.
    pub fn compute(&mut self, n: u64) {
        self.fault_stall();
        self.instructions += n;
        self.clock += n as f64 * self.params.compute_cpi;
        self.compute_cycles += n as f64 * self.params.compute_cpi;
    }

    /// Current clock (cycles since machine construction).
    pub fn clock(&self) -> f64 {
        self.clock
    }
}

/// Record of a completed phase, for diagnostics and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase label.
    pub name: String,
    /// Cycles the phase took (slowest processor or bus, whichever larger).
    pub cycles: f64,
    /// True when bus bandwidth, not processor time, set the duration.
    pub bus_limited: bool,
    /// Slowest processor's cycles within the phase.
    pub max_proc_cycles: f64,
    /// Cache lines moved during the phase (all processors).
    pub bus_lines: u64,
}

/// A simulated `p`-processor SMP.
#[derive(Debug)]
pub struct SmpMachine {
    params: SmpParams,
    procs: Vec<ProcCtx>,
    /// Machine time in cycles.
    time_cycles: f64,
    barriers: u64,
    host_seconds: f64,
    phases: Vec<PhaseRecord>,
    next_addr: u64,
    /// Watchdog budget in simulated cycles: a phase that pushes the
    /// machine clock past it returns [`SimError::CycleBudgetExceeded`].
    max_cycles: u64,
}

impl SmpMachine {
    /// Build a machine with `p` processors. Panics when `p` exceeds the
    /// configuration's `max_processors` or is zero.
    pub fn new(params: SmpParams, p: usize) -> Self {
        assert!(p >= 1, "need at least one processor");
        assert!(
            p <= params.max_processors,
            "machine has only {} processors",
            params.max_processors
        );
        let fault = FaultPlan::configured();
        let procs = (0..p)
            .map(|i| ProcCtx::new(&params, i, fault.clone()))
            .collect();
        SmpMachine {
            params,
            procs,
            time_cycles: 0.0,
            barriers: 0,
            host_seconds: 0.0,
            phases: Vec::new(),
            next_addr: 0x1000,
            max_cycles: configured_max_cycles(),
        }
    }

    /// The watchdog cycle budget (default: `ARCHGRAPH_MAX_CYCLES`, else
    /// [`archgraph_core::error::DEFAULT_MAX_CYCLES`]).
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Override the watchdog cycle budget. The budget bounds the whole
    /// machine clock: the first phase that pushes [`Self::cycles`] past
    /// it fails with [`SimError::CycleBudgetExceeded`] (structured from
    /// [`Self::try_phase`], a panic from [`Self::phase`]). Clamped to ≥ 1.
    pub fn set_max_cycles(&mut self, cycles: u64) {
        self.max_cycles = cycles.max(1);
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.procs.len()
    }

    /// Machine parameters.
    pub fn params(&self) -> &SmpParams {
        &self.params
    }

    /// Allocate a simulated array of `len` elements of `elem_bytes` each,
    /// line-aligned. Returns its address descriptor.
    pub fn alloc(&mut self, len: usize, elem_bytes: usize) -> ArrayAddr {
        let line = self.params.line_bytes as u64;
        let base = self.next_addr;
        let bytes = (len as u64 * elem_bytes as u64).max(1);
        self.next_addr = (base + bytes).div_ceil(line) * line + line;
        ArrayAddr {
            base,
            elem_bytes: elem_bytes as u64,
        }
    }

    /// Allocate a simulated array sized for `len` elements of type `T`.
    pub fn alloc_elems<T>(&mut self, len: usize) -> ArrayAddr {
        self.alloc(len, std::mem::size_of::<T>())
    }

    /// Run one SPMD phase followed by a software barrier: `f(proc, ctx)`
    /// is invoked once per processor. Returns the phase record. Panics
    /// with the [`SimError`] display text if the machine clock passes
    /// the watchdog budget; use [`Self::try_phase`] to handle it.
    pub fn phase<F: FnMut(usize, &mut ProcCtx)>(&mut self, name: &str, f: F) -> &PhaseRecord {
        match self.phase_inner(name, f, true) {
            Ok(()) => self.last_phase(),
            Err(e) => panic!("smp phase failed: {e}"),
        }
    }

    /// Run a phase without a trailing barrier (e.g. the final phase of an
    /// algorithm, or sequential code on processor 0).
    pub fn phase_no_barrier<F: FnMut(usize, &mut ProcCtx)>(
        &mut self,
        name: &str,
        f: F,
    ) -> &PhaseRecord {
        match self.phase_inner(name, f, false) {
            Ok(()) => self.last_phase(),
            Err(e) => panic!("smp phase failed: {e}"),
        }
    }

    /// [`Self::phase`], but a phase that pushes the machine clock past
    /// [`Self::max_cycles`] returns [`SimError::CycleBudgetExceeded`]
    /// instead of panicking. The offending phase's time and stats stay
    /// recorded (the simulation stopped *after* it, as close to the
    /// budget as phase granularity allows).
    pub fn try_phase<F: FnMut(usize, &mut ProcCtx)>(
        &mut self,
        name: &str,
        f: F,
    ) -> Result<&PhaseRecord, SimError> {
        self.phase_inner(name, f, true)?;
        Ok(self.last_phase())
    }

    /// [`Self::try_phase`] without the trailing barrier.
    pub fn try_phase_no_barrier<F: FnMut(usize, &mut ProcCtx)>(
        &mut self,
        name: &str,
        f: F,
    ) -> Result<&PhaseRecord, SimError> {
        self.phase_inner(name, f, false)?;
        Ok(self.last_phase())
    }

    fn last_phase(&self) -> &PhaseRecord {
        self.phases
            .last()
            .expect("phase_inner pushed a record before returning")
    }

    fn phase_inner<F: FnMut(usize, &mut ProcCtx)>(
        &mut self,
        name: &str,
        mut f: F,
        barrier: bool,
    ) -> Result<(), SimError> {
        let host_t0 = std::time::Instant::now();
        let mut max_elapsed = 0.0f64;
        let mut lines = 0u64;
        for (i, ctx) in self.procs.iter_mut().enumerate() {
            let c0 = ctx.clock;
            let b0 = ctx.bus_lines;
            f(i, ctx);
            max_elapsed = max_elapsed.max(ctx.clock - c0);
            lines += ctx.bus_lines - b0;
        }
        let bus_cycles =
            lines as f64 * self.params.line_bytes as f64 / self.params.bus_bytes_per_cycle;
        let bus_limited = bus_cycles > max_elapsed;
        let mut cycles = max_elapsed.max(bus_cycles);
        if barrier {
            cycles += self.params.barrier_cycles(self.procs.len()) as f64;
            self.barriers += 1;
        }
        self.time_cycles += cycles;
        self.host_seconds += host_t0.elapsed().as_secs_f64();
        self.phases.push(PhaseRecord {
            name: name.to_string(),
            cycles,
            bus_limited,
            max_proc_cycles: max_elapsed,
            bus_lines: lines,
        });
        // Phases are closure-driven, so the finest watchdog granularity
        // is one phase: charge it, then fail if the clock ran past the
        // budget — a runaway iteration loop dies on its first over-budget
        // phase instead of spinning forever.
        if self.time_cycles > self.max_cycles as f64 {
            return Err(SimError::CycleBudgetExceeded {
                budget: self.max_cycles,
                spent: self.time_cycles.ceil() as u64,
                what: "smp cycles",
            });
        }
        Ok(())
    }

    /// Charge one standalone software barrier.
    pub fn barrier(&mut self) {
        self.time_cycles += self.params.barrier_cycles(self.procs.len()) as f64;
        self.barriers += 1;
    }

    /// Elapsed simulated time in cycles.
    pub fn cycles(&self) -> f64 {
        self.time_cycles
    }

    /// Elapsed simulated time in seconds.
    pub fn seconds(&self) -> f64 {
        self.time_cycles * self.params.cycle_seconds()
    }

    /// Host wall-clock seconds spent simulating phases so far. A
    /// measurement of the simulator itself (for the bench harness), not a
    /// simulated quantity, and deliberately kept out of [`RunStats`].
    pub fn host_seconds(&self) -> f64 {
        self.host_seconds
    }

    /// The per-phase log.
    pub fn phase_log(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// Aggregate statistics across processors and phases.
    pub fn stats(&self) -> RunStats {
        let mut s = RunStats {
            cycles: self.time_cycles,
            barriers: self.barriers,
            phases: self.phases.len() as u64,
            bus_limited_phases: self.phases.iter().filter(|p| p.bus_limited).count() as u64,
            ..Default::default()
        };
        for p in &self.procs {
            s.instructions += p.instructions;
            s.loads += p.loads;
            s.stores += p.stores;
            s.l1_hits += p.l1_hits;
            s.l2_hits += p.l2_hits;
            s.mem_accesses += p.mem_accesses;
            s.prefetch_hits += p.prefetch.hits;
            s.tlb_misses += p.tlb.misses;
            s.bus_lines += p.bus_lines;
            s.compute_cycles += p.compute_cycles;
            s.mem_stall_cycles += p.mem_stall_cycles;
            s.tlb_stall_cycles += p.tlb_stall_cycles;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(p: usize) -> SmpMachine {
        SmpMachine::new(SmpParams::tiny_for_tests(), p)
    }

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut m = tiny(1);
        let a = m.alloc_elems::<u32>(100);
        let b = m.alloc_elems::<u64>(50);
        assert!(a.base.is_multiple_of(m.params().line_bytes as u64));
        assert!(b.base >= a.addr(100));
        assert_eq!(a.addr(3) - a.addr(0), 12);
        assert_eq!(b.elem_bytes, 8);
    }

    #[test]
    fn sequential_scan_cheaper_than_random() {
        let params = SmpParams::tiny_for_tests();
        let n = 4096usize;
        let mut seq = SmpMachine::new(params.clone(), 1);
        let a = seq.alloc_elems::<u32>(n);
        seq.phase("seq", |_, ctx| {
            for i in 0..n {
                ctx.read_elem(a, i);
            }
        });
        let mut rnd = SmpMachine::new(params, 1);
        let b = rnd.alloc_elems::<u32>(n);
        rnd.phase("rnd", |_, ctx| {
            let mut idx = 1usize;
            for _ in 0..n {
                idx = (idx * 1_664_525 + 1_013_904_223) % n;
                ctx.read_elem(b, idx);
            }
        });
        assert!(
            rnd.cycles() > 2.0 * seq.cycles(),
            "random {} vs sequential {}",
            rnd.cycles(),
            seq.cycles()
        );
    }

    #[test]
    fn phase_time_is_critical_path() {
        let mut m = tiny(2);
        m.phase("skewed", |proc, ctx| {
            // Processor 1 does 10x the compute of processor 0.
            ctx.compute(if proc == 0 { 100 } else { 1000 });
        });
        let rec = &m.phase_log()[0];
        let barrier = m.params().barrier_cycles(2) as f64;
        assert_eq!(rec.cycles, 1000.0 + barrier);
    }

    #[test]
    fn barrier_charged_per_phase() {
        let mut m = tiny(4);
        m.phase("a", |_, ctx| ctx.compute(1));
        m.phase("b", |_, ctx| ctx.compute(1));
        assert_eq!(m.stats().barriers, 2);
        let mut m2 = tiny(4);
        m2.phase_no_barrier("a", |_, ctx| ctx.compute(1));
        assert_eq!(m2.stats().barriers, 0);
        assert!(m.cycles() > m2.cycles());
    }

    #[test]
    fn bus_limits_bandwidth_heavy_phases() {
        // All processors miss every access: lines = accesses, and with
        // 8 procs the demanded bytes/cycle exceed the bus.
        let mut m = tiny(8);
        let n = 2048usize;
        let arrs: Vec<ArrayAddr> = (0..8).map(|_| m.alloc_elems::<u64>(n)).collect();
        m.phase("thrash", |proc, ctx| {
            let a = arrs[proc];
            // Stride by a line so every access misses (32B lines, 8B elems).
            let stride = 4usize;
            let mut i = 0usize;
            for _ in 0..n / stride {
                ctx.read_elem(a, i);
                i += stride;
            }
        });
        let rec = &m.phase_log()[0];
        assert!(rec.bus_lines >= 8 * (n / 4) as u64 - 8);
        // tiny params: 100-cycle memory, 32B line, 4 B/cyc bus: 8 procs
        // generate one line per ~100 cycles each = 8*32/100 = 2.56 B/cyc,
        // under the 4 B/cyc bus -- so not bus limited. Crank it with a
        // custom config instead:
        let mut params = SmpParams::tiny_for_tests();
        params.bus_bytes_per_cycle = 0.5;
        let mut m = SmpMachine::new(params, 8);
        let arrs: Vec<ArrayAddr> = (0..8).map(|_| m.alloc_elems::<u64>(n)).collect();
        m.phase("thrash", |proc, ctx| {
            let a = arrs[proc];
            let mut i = 0usize;
            for _ in 0..n / 4 {
                ctx.read_elem(a, i);
                i += 4;
            }
        });
        assert!(m.phase_log()[0].bus_limited, "narrow bus must limit");
        assert_eq!(m.stats().bus_limited_phases, 1);
    }

    #[test]
    fn caches_persist_across_phases() {
        let mut m = tiny(1);
        let a = m.alloc_elems::<u32>(8);
        m.phase("warm", |_, ctx| {
            for i in 0..8 {
                ctx.read_elem(a, i);
            }
        });
        let miss_before = m.stats().mem_accesses;
        m.phase("reuse", |_, ctx| {
            for i in 0..8 {
                ctx.read_elem(a, i);
            }
        });
        assert_eq!(m.stats().mem_accesses, miss_before, "second pass all hits");
    }

    #[test]
    fn stats_conservation_laws() {
        let mut m = tiny(2);
        let a = m.alloc_elems::<u32>(512);
        m.phase("mix", |proc, ctx| {
            for i in 0..256 {
                let idx = (i * 37 + proc * 11) % 512;
                if i % 3 == 0 {
                    ctx.write_elem(a, idx);
                } else {
                    ctx.read_elem(a, idx);
                }
                ctx.compute(2);
            }
        });
        let s = m.stats();
        assert_eq!(s.accesses(), 512);
        assert_eq!(s.l1_hits + s.l2_hits + s.mem_accesses, s.accesses());
        assert!(s.prefetch_hits <= s.mem_accesses);
        assert!(s.cycles > 0.0);
        assert_eq!(s.phases, 1);
    }

    #[test]
    fn seconds_track_clock_rate() {
        let mut m = tiny(1);
        m.phase_no_barrier("c", |_, ctx| ctx.compute(1000));
        // tiny params: CPI 1.0 at 100 MHz.
        assert!((m.seconds() - 1000.0 / 100.0e6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn too_many_processors_rejected() {
        SmpMachine::new(SmpParams::tiny_for_tests(), 9);
    }

    #[test]
    fn stall_breakdown_accounts_for_all_busy_time() {
        let mut m = tiny(2);
        let a = m.alloc_elems::<u32>(4096);
        m.phase("mixed", |proc, ctx| {
            for i in 0..1024usize {
                let idx = (i * 31 + proc * 7) % 4096;
                if i % 4 == 0 {
                    ctx.write_elem(a, idx);
                } else {
                    ctx.read_elem(a, idx);
                }
                ctx.compute(3);
            }
        });
        let s = m.stats();
        let (fc, fm, ft) = s.stall_breakdown();
        assert!((fc + fm + ft - 1.0).abs() < 1e-9, "fractions sum to 1");
        assert!(fc > 0.0 && fm > 0.0, "both compute and memory time present");
        // Busy cycles never exceed machine time x processors (barriers and
        // bus stretching only add).
        assert!(s.busy_cycles() <= s.cycles * 2.0 + 1e-6);
    }

    #[test]
    fn watchdog_converts_runaway_phase_to_structured_error() {
        let mut m = tiny(1);
        m.set_max_cycles(100);
        assert_eq!(m.max_cycles(), 100);
        let err = m
            .try_phase("runaway", |_, ctx| ctx.compute(1_000_000))
            .unwrap_err();
        match err {
            SimError::CycleBudgetExceeded {
                budget,
                spent,
                what,
            } => {
                assert_eq!(budget, 100);
                assert!(spent > 100);
                assert_eq!(what, "smp cycles");
            }
            other => panic!("expected a budget error, got {other}"),
        }
        // The over-budget phase itself stays recorded.
        assert_eq!(m.phase_log().len(), 1);

        let mut ok = tiny(1);
        ok.set_max_cycles(1 << 30);
        assert!(ok.try_phase("fits", |_, ctx| ctx.compute(10)).is_ok());
    }

    #[test]
    #[should_panic(expected = "smp phase failed")]
    fn panicking_phase_wrapper_reports_budget_error() {
        let mut m = tiny(1);
        m.set_max_cycles(1);
        m.phase("runaway", |_, ctx| ctx.compute(1_000_000));
    }

    #[test]
    fn structural_faults_stall_and_brown_out_the_clock() {
        use archgraph_core::{with_fault_plan, FaultPlan};
        let run = |plan: Option<FaultPlan>| {
            with_fault_plan(plan, || {
                let mut m = tiny(2);
                let a = m.alloc_elems::<u32>(4096);
                m.phase("mixed", |proc, ctx| {
                    for i in 0..2048usize {
                        let idx = (i * 31 + proc * 7) % 4096;
                        if i % 4 == 0 {
                            ctx.write_elem(a, idx);
                        } else {
                            ctx.read_elem(a, idx);
                        }
                        ctx.compute(3);
                    }
                });
                (m.cycles(), m.stats())
            })
        };
        let (clean, cs) = run(None);
        // Stalls stretch the clock but leave the work counters alone.
        let stall = FaultPlan::parse("stall=300,stall-period=3000:7").unwrap();
        let (stalled, ss) = run(Some(stall));
        assert!(stalled > clean, "stall windows must cost time");
        assert_eq!(ss.instructions, cs.instructions);
        assert_eq!(ss.accesses(), cs.accesses());
        assert_eq!(ss.mem_accesses, cs.mem_accesses);
        // A brownout quadruples main-memory charges from cycle 0 on.
        let (browned, bs) = run(Some(FaultPlan::parse("brownout=4:7").unwrap()));
        assert!(browned > clean, "brownout must cost time");
        assert_eq!(bs.accesses(), cs.accesses());
        // The address-keyed axis is MTA-only: no SMP effect at all.
        let spike = FaultPlan::parse("mem-latency=300,rate=0:7").unwrap();
        let (spiked, _) = run(Some(spike));
        assert_eq!(spiked, clean);
        // Determinism: the same plan costs the same cycles again.
        let (stalled2, _) = run(Some(
            FaultPlan::parse("stall=300,stall-period=3000:7").unwrap(),
        ));
        assert_eq!(stalled2, stalled);
    }

    #[test]
    fn write_misses_move_two_lines() {
        let mut m = tiny(1);
        let a = m.alloc_elems::<u64>(64);
        m.phase_no_barrier("w", |_, ctx| {
            // One store per 32B line: 16 store misses.
            for i in (0..64).step_by(4) {
                ctx.write_elem(a, i);
            }
        });
        let s = m.stats();
        assert_eq!(s.mem_accesses, 16);
        assert_eq!(s.bus_lines, 32);
    }
}
