//! A sequential stream-detection prefetcher.
//!
//! This is the mechanism behind the paper's Ordered/Random gap: "caching
//! takes advantage of spatial and temporal locality, while prefetching
//! mechanisms use data address history to predict memory access patterns
//! and perform reads early ... prefetching shows limited or no improvement
//! for irregular codes where the access patterns cannot be predicted"
//! (§2.1). The model: the prefetcher tracks up to `streams` ascending
//! line-address streams; once `trigger` consecutive lines of a stream have
//! missed, subsequent lines of that stream are considered in flight and
//! cost an L2 hit instead of a memory round trip.

/// State of the per-processor stream prefetcher.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    /// Next expected line address for each established stream
    /// (`u64::MAX` = free slot). LRU order: index 0 most recently used.
    streams: Vec<u64>,
    /// Candidate streams: (next expected line, observed run length).
    candidates: Vec<(u64, usize)>,
    /// Eviction bound for the candidate table. This must be an explicit
    /// field: bounding against `candidates.capacity()` is Clone-unsafe,
    /// because `Vec::clone` allocates for the clone's *length*, so a cloned
    /// prefetcher would evict earlier than its template and diverge.
    max_candidates: usize,
    /// Consecutive misses required to establish a stream.
    trigger: usize,
    /// Number of useful prefetches delivered.
    pub hits: u64,
}

impl Prefetcher {
    /// A prefetcher with `streams` stream slots and the given trigger
    /// length. `streams = 0` produces an always-miss (disabled) prefetcher.
    pub fn new(streams: usize, trigger: usize) -> Self {
        let max_candidates = streams.max(4) * 2;
        Prefetcher {
            streams: vec![u64::MAX; streams],
            candidates: Vec::with_capacity(max_candidates),
            max_candidates,
            trigger: trigger.max(1),
            hits: 0,
        }
    }

    /// Report a demand miss on `line`. Returns `true` when the prefetcher
    /// had this line in flight (an established stream predicted it), in
    /// which case the stream advances; otherwise the miss trains the
    /// candidate table.
    pub fn on_miss(&mut self, line: u64) -> bool {
        // Established stream hit?
        if let Some(pos) = self.streams.iter().position(|&s| s == line) {
            self.streams[pos] = line + 1;
            self.streams[..=pos].rotate_right(1);
            self.hits += 1;
            return true;
        }
        if self.streams.is_empty() {
            return false;
        }
        // Train candidates: did we recently miss on line - 1?
        if let Some(pos) = self.candidates.iter().position(|&(next, _)| next == line) {
            let (_, run) = self.candidates.remove(pos);
            let run = run + 1;
            if run >= self.trigger {
                // Promote to an established stream, evicting LRU.
                let last = self.streams.len() - 1;
                self.streams[last] = line + 1;
                self.streams.rotate_right(1);
            } else {
                self.candidates.push((line + 1, run));
            }
        } else {
            if self.candidates.len() >= self.max_candidates {
                self.candidates.remove(0);
            }
            self.candidates.push((line + 1, 1));
        }
        false
    }

    /// Number of stream slots.
    pub fn stream_slots(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_misses_establish_stream() {
        let mut p = Prefetcher::new(2, 2);
        assert!(!p.on_miss(100)); // candidate (101, 1)
        assert!(!p.on_miss(101)); // run 2 = trigger -> stream expects 102
        assert!(p.on_miss(102), "established stream covers the next line");
        assert!(p.on_miss(103));
        assert_eq!(p.hits, 2);
    }

    #[test]
    fn random_misses_never_prefetch() {
        let mut p = Prefetcher::new(4, 2);
        let mut covered = 0;
        // Widely-spaced pseudo-random lines: no two consecutive.
        for i in 0..1000u64 {
            let line = (i * 2_654_435_761) % 1_000_003;
            if p.on_miss(line) {
                covered += 1;
            }
        }
        assert!(
            covered <= 2,
            "random pattern should not train streams: {covered}"
        );
    }

    #[test]
    fn disabled_prefetcher_never_hits() {
        let mut p = Prefetcher::new(0, 2);
        for l in 0..100u64 {
            assert!(!p.on_miss(l));
        }
        assert_eq!(p.hits, 0);
    }

    #[test]
    fn multiple_interleaved_streams() {
        let mut p = Prefetcher::new(2, 2);
        // Interleave two ascending streams at 0.. and 10_000..
        let mut hits = 0;
        for k in 0..50u64 {
            if p.on_miss(k) {
                hits += 1;
            }
            if p.on_miss(10_000 + k) {
                hits += 1;
            }
        }
        // Both streams establish after the trigger; nearly all later
        // misses are covered.
        assert!(
            hits >= 90,
            "interleaved streams should both prefetch: {hits}"
        );
    }

    #[test]
    fn stream_eviction_by_lru() {
        let mut p = Prefetcher::new(1, 1);
        assert!(!p.on_miss(0)); // candidate
        assert!(!p.on_miss(1)); // promote: stream expects 2
        assert!(p.on_miss(2));
        // A new stream replaces the only slot.
        assert!(!p.on_miss(500));
        assert!(!p.on_miss(501)); // promotes, evicting the old stream
        assert!(!p.on_miss(3), "old stream was evicted");
        assert!(p.on_miss(502));
    }

    #[test]
    fn clone_preserves_candidate_eviction_bound() {
        // Regression: the candidate table used to be bounded by
        // `candidates.capacity()`, which `Vec::clone` shrinks to the clone's
        // length. A cloned prefetcher then evicted candidates its template
        // kept, and the two diverged on identical miss streams.
        let mut a = Prefetcher::new(2, 2); // bound = max(2,4)*2 = 8
        for base in [100, 200, 300] {
            assert!(!a.on_miss(base)); // three live candidates, len 3 < 8
        }
        let mut b = a.clone();
        for p in [&mut a, &mut b] {
            // Under the old capacity-based bound, the clone (capacity ==
            // len == 3) evicts candidate (101, 1) here; the template
            // (capacity 8) keeps it.
            assert!(!p.on_miss(400));
            // Matches candidate (101, 1) -> run 2 == trigger -> stream
            // expecting 102 — but only where (101, 1) survived.
            assert!(!p.on_miss(101));
        }
        assert!(a.on_miss(102), "template predicts line 102");
        assert!(b.on_miss(102), "clone must behave like its template");
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn trigger_length_respected() {
        let mut p = Prefetcher::new(2, 4);
        assert!(!p.on_miss(10));
        assert!(!p.on_miss(11));
        assert!(!p.on_miss(12));
        assert!(!p.on_miss(13)); // run reaches 4 -> establish, expect 14
        assert!(p.on_miss(14));
    }
}
