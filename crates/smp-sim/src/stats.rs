//! Aggregated run statistics for the SMP simulator.

/// Counters accumulated over a whole simulated run (all processors, all
/// phases).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total simulated time in cycles (critical path over processors,
    /// including bus stretching and barriers).
    pub cycles: f64,
    /// Instructions retired (compute operations charged).
    pub instructions: u64,
    /// Simulated load operations.
    pub loads: u64,
    /// Simulated store operations.
    pub stores: u64,
    /// L1 hits (loads + stores).
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Accesses that went to main memory.
    pub mem_accesses: u64,
    /// Memory accesses covered by the stream prefetcher.
    pub prefetch_hits: u64,
    /// Data-TLB misses (each costing a software trap).
    pub tlb_misses: u64,
    /// Cache lines moved over the shared bus.
    pub bus_lines: u64,
    /// Barrier synchronizations executed.
    pub barriers: u64,
    /// Number of phases run.
    pub phases: u64,
    /// Phases whose duration was set by bus bandwidth, not processor time.
    pub bus_limited_phases: u64,
    /// Processor cycles spent in compute (all processors summed).
    pub compute_cycles: f64,
    /// Processor cycles stalled on cache/memory fills.
    pub mem_stall_cycles: f64,
    /// Processor cycles lost to TLB-miss traps.
    pub tlb_stall_cycles: f64,
}

impl RunStats {
    /// Total memory operations issued.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Fraction of accesses that hit in L1.
    pub fn l1_hit_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.l1_hits as f64 / a as f64
        }
    }

    /// Fraction of accesses served from main memory — the `T_M`-like
    /// quantity of the cost model.
    pub fn mem_access_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.mem_accesses as f64 / a as f64
        }
    }

    /// Fraction of memory-bound accesses that prefetching converted to
    /// L2-latency fills.
    pub fn prefetch_coverage(&self) -> f64 {
        if self.mem_accesses == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.mem_accesses as f64
        }
    }

    /// Total busy processor cycles (compute + memory stall + TLB stall),
    /// summed over processors. Idle/barrier/bus-stretch time is the
    /// machine-level remainder.
    pub fn busy_cycles(&self) -> f64 {
        self.compute_cycles + self.mem_stall_cycles + self.tlb_stall_cycles
    }

    /// Where did the time go? `(compute, memory, tlb)` fractions of the
    /// busy cycles — the stall breakdown behind the Ordered/Random gap.
    pub fn stall_breakdown(&self) -> (f64, f64, f64) {
        let b = self.busy_cycles();
        if b == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.compute_cycles / b,
            self.mem_stall_cycles / b,
            self.tlb_stall_cycles / b,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = RunStats {
            loads: 80,
            stores: 20,
            l1_hits: 50,
            mem_accesses: 40,
            prefetch_hits: 10,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 100);
        assert!((s.l1_hit_rate() - 0.5).abs() < 1e-12);
        assert!((s.mem_access_rate() - 0.4).abs() < 1e-12);
        assert!((s.prefetch_coverage() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_guarded() {
        let s = RunStats::default();
        assert_eq!(s.l1_hit_rate(), 0.0);
        assert_eq!(s.mem_access_rate(), 0.0);
        assert_eq!(s.prefetch_coverage(), 0.0);
    }
}
