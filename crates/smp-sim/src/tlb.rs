//! A data-TLB model.
//!
//! On the UltraSPARC-II a data-TLB miss traps to a software handler —
//! dozens to hundreds of cycles — and the TLB holds only 64 entries
//! (512 KB of 8 KB pages). Pointer chasing through arrays tens of
//! megabytes large therefore misses the TLB on almost every access; a
//! sequential scan misses once per 2048 4-byte elements. Together with
//! the cache hierarchy this is the dominant mechanism behind the paper's
//! Ordered/Random gap on the SMP.

/// A fully-associative, LRU translation lookaside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Page numbers, LRU order (index 0 = most recent); `u64::MAX` empty.
    entries: Vec<u64>,
    page_shift: u32,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl Tlb {
    /// A TLB with `entries` slots over pages of `page_bytes` (power of
    /// two). `entries = 0` disables the model (every access "hits").
    pub fn new(entries: usize, page_bytes: usize) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            entries: vec![u64::MAX; entries],
            page_shift: page_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// Translate the page containing `addr`; returns `true` on hit.
    /// Misses install the page at the MRU position.
    pub fn access(&mut self, addr: u64) -> bool {
        if self.entries.is_empty() {
            return true;
        }
        let page = addr >> self.page_shift;
        if let Some(pos) = self.entries.iter().position(|&e| e == page) {
            self.entries[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            let last = self.entries.len() - 1;
            self.entries[last] = page;
            self.entries.rotate_right(1);
            self.misses += 1;
            false
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Bytes per page.
    pub fn page_bytes(&self) -> usize {
        1usize << self.page_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_page_hits() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access(0));
        assert!(t.access(100));
        assert!(t.access(4095));
        assert!(!t.access(4096), "next page");
        assert_eq!(t.hits, 2);
        assert_eq!(t.misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // page 0 MRU
        t.access(8192); // page 2 evicts page 1
        assert!(t.access(0), "page 0 survives");
        assert!(!t.access(4096), "page 1 evicted");
    }

    #[test]
    fn disabled_tlb_always_hits() {
        let mut t = Tlb::new(0, 4096);
        for i in 0..100u64 {
            assert!(t.access(i * 1_000_003));
        }
        assert_eq!(t.misses, 0);
    }

    #[test]
    fn sequential_scan_misses_once_per_page() {
        let mut t = Tlb::new(8, 8192);
        for i in 0..(4 * 2048u64) {
            t.access(i * 4);
        }
        assert_eq!(t.misses, 4, "one miss per 8 KB page of u32s");
    }

    #[test]
    fn random_scan_thrashes_small_tlb() {
        let mut t = Tlb::new(8, 8192);
        for i in 0..1000u64 {
            t.access((i * 2_654_435_761) % (1 << 30));
        }
        assert!(t.misses > 900, "misses = {}", t.misses);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_rejected() {
        Tlb::new(4, 3000);
    }

    #[test]
    fn geometry_accessors() {
        let t = Tlb::new(64, 8192);
        assert_eq!(t.capacity(), 64);
        assert_eq!(t.page_bytes(), 8192);
    }
}
