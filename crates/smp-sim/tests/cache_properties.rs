//! Property tests for the SMP memory-system models: conservation laws and
//! hierarchy invariants must hold for arbitrary access traces.

use proptest::prelude::*;

use archgraph_core::SmpParams;
use archgraph_smp_sim::cache::Cache;
use archgraph_smp_sim::machine::SmpMachine;
use archgraph_smp_sim::tlb::Tlb;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_counters_conserve(addrs in proptest::collection::vec(0u64..(1 << 16), 1..500)) {
        let mut c = Cache::new(1024, 64, 2);
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.stats.accesses(), addrs.len() as u64);
        prop_assert!(c.stats.hit_rate() <= 1.0);
        // Re-access of the last address always hits (it was just installed).
        let last = *addrs.last().unwrap();
        prop_assert!(c.probe(last));
    }

    #[test]
    fn repeating_a_trace_never_lowers_hits(addrs in proptest::collection::vec(0u64..(1 << 14), 1..200)) {
        // Second identical pass over a trace that fits in the cache gets
        // at least as many hits as the first.
        let mut c = Cache::new(1 << 16, 64, 4); // 64 KB: the trace footprint fits
        for &a in &addrs {
            c.access(a);
        }
        let first = c.stats.hits;
        for &a in &addrs {
            c.access(a);
        }
        let second = c.stats.hits - first;
        prop_assert!(second >= first);
        // With a fully-resident footprint the second pass is all hits.
        prop_assert_eq!(second, addrs.len() as u64);
    }

    #[test]
    fn tlb_miss_count_bounded_by_distinct_pages_when_resident(
        pages in proptest::collection::vec(0u64..6, 1..300)
    ) {
        // 6 distinct pages in an 8-entry TLB: every page stays resident,
        // so misses = distinct pages touched (cold misses only).
        let mut t = Tlb::new(8, 4096);
        let mut distinct = std::collections::HashSet::new();
        for &p in &pages {
            t.access(p * 4096 + (p % 7) * 13);
            distinct.insert(p);
        }
        prop_assert_eq!(t.misses as usize, distinct.len());
    }

    #[test]
    fn machine_stats_conserve_for_arbitrary_mixed_traffic(
        ops in proptest::collection::vec((0usize..2048, any::<bool>()), 1..400),
        p in 1usize..5,
    ) {
        let mut m = SmpMachine::new(SmpParams::tiny_for_tests(), p);
        let arr = m.alloc_elems::<u32>(2048);
        let ops_ref = &ops;
        m.phase("traffic", |proc, ctx| {
            for (i, &(idx, is_write)) in ops_ref.iter().enumerate() {
                if i % p == proc {
                    if is_write {
                        ctx.write_elem(arr, idx);
                    } else {
                        ctx.read_elem(arr, idx);
                    }
                    ctx.compute(1);
                }
            }
        });
        let s = m.stats();
        prop_assert_eq!(s.accesses(), ops.len() as u64);
        prop_assert_eq!(s.l1_hits + s.l2_hits + s.mem_accesses, s.accesses());
        prop_assert!(s.prefetch_hits <= s.mem_accesses);
        prop_assert!(s.tlb_misses <= s.accesses());
        prop_assert!(s.cycles > 0.0);
        prop_assert_eq!(s.barriers, 1);
        let writes = ops.iter().filter(|&&(_, w)| w).count() as u64;
        prop_assert_eq!(s.stores, writes);
        prop_assert_eq!(s.loads, ops.len() as u64 - writes);
    }

    #[test]
    fn phase_time_dominates_any_single_processor(
        work in proptest::collection::vec(1u64..2000, 1..6),
    ) {
        let p = work.len();
        let mut m = SmpMachine::new(SmpParams::tiny_for_tests(), p.min(8));
        let work_ref = &work;
        m.phase_no_barrier("compute", |proc, ctx| {
            if proc < work_ref.len() {
                ctx.compute(work_ref[proc]);
            }
        });
        let max = *work.iter().max().unwrap() as f64;
        prop_assert!(m.cycles() >= max, "critical path {} < max work {max}", m.cycles());
    }
}
