//! The paper's core experiment in miniature: the same two kernels on the
//! two simulated architectures, with the headline comparisons printed.
//!
//! ```text
//! cargo run --release --example architecture_showdown
//! ```

use archgraph::concomp::{sim_mta as cc_mta, sim_smp as cc_smp};
use archgraph::core::machine::{MtaParams, SmpParams};
use archgraph::core::report::{fmt_ratio, fmt_seconds, Table};
use archgraph::graph::gen;
use archgraph::graph::list::LinkedList;
use archgraph::graph::rng::Rng;
use archgraph::listrank::{sim_mta as lr_mta, sim_smp as lr_smp};

fn main() {
    let smp = SmpParams::sun_e4500();
    let mta = MtaParams::mta2();
    let p = 8;
    let n = 1 << 18;

    println!("simulated machines:");
    println!(
        "  SMP: Sun E4500 class — {} MHz, {} KB direct-mapped L1, {} MB L2, software barriers",
        smp.clock_hz / 1e6,
        smp.l1_bytes / 1024,
        smp.l2_bytes / (1024 * 1024)
    );
    println!(
        "  MTA: Cray MTA-2 — {} MHz, {} streams/processor, no caches, full/empty-bit sync",
        mta.clock_hz / 1e6,
        mta.streams_per_processor
    );

    // --- list ranking on both machines, both layouts ---
    println!("\nlist ranking, n = {n}, p = {p}:");
    let ordered = LinkedList::ordered(n);
    let random = LinkedList::random(n, &mut Rng::new(3));

    let smp_ord = lr_smp::simulate_hj(&ordered, &smp, p, 8, 3).seconds;
    let smp_rnd = lr_smp::simulate_hj(&random, &smp, p, 8, 3).seconds;
    let mta_ord = lr_mta::simulate_walk_ranking(&ordered, &mta, p, 100, n / 10);
    let mta_rnd = lr_mta::simulate_walk_ranking(&random, &mta, p, 100, n / 10);

    let mut t = Table::new(["layout", "SMP", "MTA", "SMP/MTA"]);
    t.row([
        "Ordered".into(),
        fmt_seconds(smp_ord),
        fmt_seconds(mta_ord.seconds),
        fmt_ratio(smp_ord / mta_ord.seconds),
    ]);
    t.row([
        "Random".into(),
        fmt_seconds(smp_rnd),
        fmt_seconds(mta_rnd.seconds),
        fmt_ratio(smp_rnd / mta_rnd.seconds),
    ]);
    for line in t.render().lines() {
        println!("  {line}");
    }
    println!(
        "  -> SMP pays {} for losing locality; the MTA pays {} (latency is hidden, \
         addresses are hashed).",
        fmt_ratio(smp_rnd / smp_ord),
        fmt_ratio(mta_rnd.seconds / mta_ord.seconds)
    );
    println!(
        "  -> MTA utilization: {:.0}% ordered, {:.0}% random.",
        mta_ord.report.utilization * 100.0,
        mta_rnd.report.utilization * 100.0
    );

    // --- connected components ---
    let nv = 1 << 13;
    let g = gen::random_gnm(nv, 12 * nv, 5);
    println!("\nconnected components, n = {nv}, m = {}, p = {p}:", g.m());
    let s = cc_smp::simulate_sv(&g, &smp, p);
    let m_ = cc_mta::simulate_sv_mta(&g, &mta, p, 100);
    println!(
        "  SMP SV: {} in {} iterations",
        fmt_seconds(s.seconds),
        s.iterations
    );
    println!(
        "  MTA SV: {} in {} iterations, utilization {:.0}%",
        fmt_seconds(m_.seconds),
        m_.iterations,
        m_.report.utilization * 100.0
    );
    println!(
        "  -> the MTA is {} faster (paper: 5-6x).",
        fmt_ratio(s.seconds / m_.seconds)
    );
}
