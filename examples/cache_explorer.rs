//! Exploring the simulated Sun E4500 memory system directly: the same
//! access count under different access patterns, and what each level of
//! the hierarchy (L1, L2, TLB, prefetcher) does to it — the §2.1 story
//! quantified.
//!
//! ```text
//! cargo run --release --example cache_explorer
//! ```

use archgraph::core::machine::SmpParams;
use archgraph::core::report::Table;
use archgraph::graph::rng::Rng;
use archgraph::smp::machine::SmpMachine;

const N: usize = 1 << 20; // 4 MB of u32 — larger than L2's usable share

fn run(label: &str, params: &SmpParams, pattern: impl Fn(usize) -> usize) -> Vec<String> {
    let mut m = SmpMachine::new(params.clone(), 1);
    let arr = m.alloc_elems::<u32>(N);
    m.phase_no_barrier("access", |_, ctx| {
        for i in 0..N {
            ctx.read_elem(arr, pattern(i));
            ctx.compute(2);
        }
    });
    let s = m.stats();
    let (fc, fm, ft) = s.stall_breakdown();
    vec![
        label.to_string(),
        format!("{:.1}", s.cycles / N as f64),
        format!("{:.1}%", s.l1_hit_rate() * 100.0),
        format!("{:.1}%", s.mem_access_rate() * 100.0),
        format!("{}", s.tlb_misses),
        format!("{:.0}/{:.0}/{:.0}%", fc * 100.0, fm * 100.0, ft * 100.0),
        format!("{:.2} ms", m.seconds() * 1e3),
    ]
}

fn main() {
    let e4500 = SmpParams::sun_e4500();
    println!(
        "simulated E4500: {} KB dm-L1, {} MB L2, {}-entry TLB ({} KB pages), \
         {}-cycle memory, prefetcher {}",
        e4500.l1_bytes / 1024,
        e4500.l2_bytes / (1024 * 1024),
        e4500.tlb_entries,
        e4500.page_bytes / 1024,
        e4500.mem_latency,
        if e4500.prefetch_streams == 0 {
            "off (US-II)"
        } else {
            "on"
        },
    );
    println!("{N} u32 loads (4 MB array), one processor:\n");

    let mut rng = Rng::new(1);
    let perm: Vec<usize> = {
        let mut p: Vec<usize> = (0..N).collect();
        rng.shuffle(&mut p);
        p
    };

    let mut t = Table::new([
        "pattern",
        "cyc/access",
        "L1 hit",
        "to memory",
        "TLB misses",
        "cpu/mem/tlb",
        "time",
    ]);
    t.row(run("sequential", &e4500, |i| i));
    t.row(run("strided x16 (line-sized)", &e4500, |i| (i * 16) % N));
    t.row(run("strided x2048 (page-sized)", &e4500, |i| {
        (i * 2048 + i / (N / 2048)) % N
    }));
    t.row(run("random permutation", &e4500, |i| perm[i]));
    let mut with_prefetch = e4500.clone();
    with_prefetch.prefetch_streams = 4;
    t.row(run("sequential + prefetcher", &with_prefetch, |i| i));
    let mut no_tlb = e4500.clone();
    no_tlb.tlb_entries = 0;
    t.row(run("random, TLB modeled off", &no_tlb, |i| perm[i]));
    for line in t.render().lines() {
        println!("  {line}");
    }

    println!(
        "\nreadout: sequential amortizes one line fill over 16 elements; \
         line-sized strides defeat spatial reuse; page-sized strides also \
         thrash the TLB; random pays the full memory + TLB-trap cost per \
         access — the paper's Ordered/Random gap in miniature."
    );
}
