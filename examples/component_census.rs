//! A census of every connected-components algorithm in the workspace over
//! a portfolio of graph topologies — the comparison Greiner ran across
//! data-parallel CC algorithms (paper §4 related work), here on the host.
//!
//! ```text
//! cargo run --release --example component_census
//! ```

use std::time::Instant;

use archgraph::concomp::awerbuch_shiloach::awerbuch_shiloach;
use archgraph::concomp::hybrid::{hybrid_components, HybridConfig};
use archgraph::concomp::random_mating::random_mating;
use archgraph::concomp::seq::bfs_components;
use archgraph::concomp::sv_spmd::sv_spmd;
use archgraph::concomp::{shiloach_vishkin, sv_mta_style};
use archgraph::core::report::Table;
use archgraph::graph::edgelist::EdgeList;
use archgraph::graph::gen;
use archgraph::graph::unionfind::{connected_components, same_partition};
use archgraph::graph::Node;

fn time_ms(f: impl FnOnce() -> Vec<Node>) -> (Vec<Node>, f64) {
    let t0 = Instant::now();
    let labels = f();
    (labels, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let n = 1 << 15;
    let workloads: Vec<(&str, EdgeList)> = vec![
        ("random sparse (m = 2n)", gen::random_gnm(n, 2 * n, 1)),
        ("random dense (m = 16n)", gen::random_gnm(n, 16 * n, 2)),
        ("2-D mesh", gen::mesh2d(181, 181)),
        ("3-D torus-ish mesh", gen::mesh3d(32, 32, 32)),
        ("long path", gen::path(n)),
        (
            "10k planted blobs",
            gen::planted_components(10_000, 3, 1, 3),
        ),
    ];

    for (name, g) in &workloads {
        println!("\n== {name}: n = {}, m = {} ==", g.n, g.m());
        let oracle = connected_components(g);
        let ncomp = {
            let mut c = oracle.clone();
            c.sort_unstable();
            c.dedup();
            c.len()
        };

        type Entry<'a> = (&'a str, Box<dyn FnOnce() -> Vec<Node> + 'a>);
        let mut t = Table::new(["algorithm", "time", "correct"]);
        let entries: Vec<Entry> = vec![
            (
                "union-find (seq oracle)",
                Box::new(|| connected_components(g)),
            ),
            ("BFS (seq)", Box::new(|| bfs_components(g))),
            ("Shiloach-Vishkin Alg.2", Box::new(|| shiloach_vishkin(g))),
            ("Shiloach-Vishkin Alg.3", Box::new(|| sv_mta_style(g))),
            ("Shiloach-Vishkin SPMD", Box::new(|| sv_spmd(g, 4))),
            ("Awerbuch-Shiloach", Box::new(|| awerbuch_shiloach(g))),
            ("random mating", Box::new(|| random_mating(g, 7))),
            (
                "hybrid (mating + SV)",
                Box::new(|| hybrid_components(g, &HybridConfig::default())),
            ),
        ];
        for (alg, f) in entries {
            let (labels, ms) = time_ms(f);
            let ok = same_partition(&labels, &oracle);
            t.row([alg.to_string(), format!("{ms:8.2} ms"), format!("{ok}")]);
            assert!(ok, "{alg} disagreed with the oracle on {name}");
        }
        for line in t.render().lines() {
            println!("  {line}");
        }
        println!("  components: {ncomp}");
    }
    println!("\nall algorithms agree on every topology.");
}
