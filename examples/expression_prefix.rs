//! Prefix computation over a linked list with a non-trivial operator —
//! the general problem of which list ranking is an instance (paper §3),
//! and the primitive behind the expression-evaluation and tree-contraction
//! applications the paper cites.
//!
//! We evaluate a chain of affine updates `x ← a·x + b` laid out as a
//! linked list in arbitrary memory order: composing the maps along the
//! list with the parallel prefix gives, at every node, the value the
//! chain produces up to that node — without ever materializing the
//! sequential order first.
//!
//! ```text
//! cargo run --release --example expression_prefix
//! ```

use archgraph::graph::list::LinkedList;
use archgraph::graph::rng::Rng;
use archgraph::listrank::prefix::{par_prefix, seq_prefix};

/// An affine map `x ↦ a·x + b` over i128 (wide enough to avoid overflow
/// for this demo's bounded coefficients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Affine {
    a: i128,
    b: i128,
}

/// Composition `(f ∘ earlier)`: apply `earlier` first, then `f`.
/// Associative, not commutative — exactly the operator class ⊕ the paper's
/// prefix formulation admits.
fn compose(earlier: Affine, f: Affine) -> Affine {
    Affine {
        a: (f.a * earlier.a).rem_euclid(1_000_003),
        b: (f.a * earlier.b + f.b).rem_euclid(1_000_003),
    }
}

fn main() {
    let n = 1 << 19;
    let mut rng = Rng::new(99);
    let list = LinkedList::random(n, &mut rng);

    // A random affine update at every node.
    let updates: Vec<Affine> = (0..n)
        .map(|_| Affine {
            a: (rng.below(5) + 1) as i128,
            b: rng.below(1000) as i128,
        })
        .collect();

    println!("composing {n} affine updates along a randomly-laid-out list...");
    let t0 = std::time::Instant::now();
    let seq = seq_prefix(&list, &updates, compose);
    let t_seq = t0.elapsed();

    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let t0 = std::time::Instant::now();
    let par = par_prefix(&list, &updates, compose, cores.max(2), 1);
    let t_par = t0.elapsed();

    assert_eq!(par, seq, "parallel prefix must preserve composition order");

    // The tail's prefix is the whole chain's composite map.
    let order = list.order();
    let tail = *order.last().unwrap() as usize;
    let total = par[tail];
    let x0 = 1i128;
    println!("  sequential prefix: {t_seq:?}");
    println!(
        "  parallel prefix ({cores} core(s) available): {t_par:?}  (speedup {:.2}x)",
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );
    println!(
        "  full chain applied to x0 = {x0}: {} (mod 1,000,003)",
        (total.a * x0 + total.b).rem_euclid(1_000_003)
    );

    // Spot-check against direct evaluation over the first few nodes.
    let mut x = x0;
    for &slot in order.iter().take(5) {
        let u = updates[slot as usize];
        x = (u.a * x + u.b).rem_euclid(1_000_003);
        let via_prefix = {
            let p = par[slot as usize];
            (p.a * x0 + p.b).rem_euclid(1_000_003)
        };
        assert_eq!(x, via_prefix);
    }
    println!("  spot-checked prefix values against direct chain evaluation.");
}
