//! Randomized differential fuzzing of every connected-components
//! implementation against the union-find oracle, with greedy edge-set
//! shrinking on failure. (This harness found a real termination bug in
//! the Awerbuch–Shiloach exit condition during development.)
//!
//! ```text
//! cargo run --release --example fuzz_cc [trials]
//! ```

use archgraph::concomp::awerbuch_shiloach::awerbuch_shiloach;
use archgraph::concomp::hybrid::{hybrid_components, HybridConfig};
use archgraph::concomp::random_mating::random_mating;
use archgraph::concomp::sv_spmd::sv_spmd;
use archgraph::concomp::{shiloach_vishkin, sv_mta_style};
use archgraph::graph::edgelist::EdgeList;
use archgraph::graph::rng::Rng;
use archgraph::graph::unionfind::{connected_components, same_partition};
use archgraph::graph::Node;

type Algo = (&'static str, fn(&EdgeList) -> Vec<Node>);

fn algos() -> Vec<Algo> {
    vec![
        ("sv-alg2", shiloach_vishkin as fn(&EdgeList) -> Vec<Node>),
        ("sv-alg3", sv_mta_style),
        ("sv-spmd", |g| sv_spmd(g, 4)),
        ("awerbuch-shiloach", awerbuch_shiloach),
        ("random-mating", |g| random_mating(g, 99)),
        ("hybrid", |g| hybrid_components(g, &HybridConfig::default())),
    ]
}

fn failing_algo(g: &EdgeList) -> Option<&'static str> {
    let oracle = connected_components(g);
    if let Some((name, _)) = algos()
        .into_iter()
        .find(|(_, f)| !same_partition(&f(g), &oracle))
    {
        return Some(name);
    }
    // Biconnectivity rides along: Tarjan-Vishkin vs Hopcroft-Tarjan.
    let tv = archgraph::apps::biconn::biconnected_components(g);
    let ht = archgraph::apps::biconn::biconnected_oracle(g);
    if !same_partition(&tv.block_of_edge, &ht) {
        return Some("tarjan-vishkin-biconnectivity");
    }
    None
}

fn main() {
    let trials: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let mut rng = Rng::new(0xF022);
    let mut checked = 0u64;
    for trial in 0..trials {
        let n = 3 + rng.below(120) as usize;
        let m = rng.below(320) as usize;
        let pairs: Vec<(Node, Node)> = (0..m)
            .map(|_| (rng.below(n as u64) as Node, rng.below(n as u64) as Node))
            .collect();
        let g = EdgeList::from_pairs(n, pairs.clone());
        checked += 1;
        if let Some(which) = failing_algo(&g) {
            eprintln!("FAILURE in {which} at trial {trial} (n={n}, m={m}); shrinking...");
            let mut cur = pairs;
            loop {
                let mut shrunk = false;
                for i in 0..cur.len() {
                    let mut t = cur.clone();
                    t.remove(i);
                    if failing_algo(&EdgeList::from_pairs(n, t.clone())).is_some() {
                        cur = t;
                        shrunk = true;
                        break;
                    }
                }
                if !shrunk {
                    break;
                }
            }
            eprintln!("minimal failing edge set ({} edges): {cur:?}", cur.len());
            std::process::exit(1);
        }
    }
    println!(
        "fuzzed {checked} random multigraphs across {} CC implementations plus \
         Tarjan-Vishkin biconnectivity: all match their oracles.",
        algos().len()
    );
}
