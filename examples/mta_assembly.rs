//! Programming the simulated Cray MTA-2 directly: a parallel histogram
//! written in the micro-ISA, using `int_fetch_add` for both dynamic loop
//! scheduling and bin updates, and an FEB sense-reversing barrier between
//! the fill and verify phases.
//!
//! ```text
//! cargo run --release --example mta_assembly
//! ```

use archgraph::core::machine::MtaParams;
use archgraph::graph::rng::Rng;
use archgraph::mta::isa::{ProgramBuilder, Reg};
use archgraph::mta::machine::MtaMachine;
use archgraph::mta::parloop::{dynamic_loop_grained, LoopRegs};
use archgraph::mta::runtime::emit_barrier;

const N: usize = 100_000;
const BINS: usize = 64;
const STREAMS: usize = 100;
const PROCS: usize = 4;

fn main() {
    let params = MtaParams::mta2();
    let mut m = MtaMachine::with_memory_words(params, PROCS, N + BINS + 64);

    // Host-side data: random values in 0..BINS.
    let mut rng = Rng::new(2025);
    let data: Vec<i64> = (0..N).map(|_| rng.below(BINS as u64) as i64).collect();
    let data_base = m.memory_mut().alloc_init(&data);
    let bins_base = m.memory_mut().alloc(BINS);
    let counter = m.memory_mut().alloc(1);
    let bar_count = m.memory_mut().alloc(1);
    let bar_gen = m.memory_mut().alloc(1);
    let check_acc = m.memory_mut().alloc(1);

    // The program: histogram fill, barrier, then a parallel checksum of
    // the bins (sum must equal N).
    let mut b = ProgramBuilder::new();
    let regs = LoopRegs::standard();
    let (val, one, scratch) = (Reg(6), Reg(7), Reg(8));
    b.li(one, 1);
    dynamic_loop_grained(&mut b, counter, N as i64, 32, regs, |b| {
        b.load(val, regs.idx, data_base as i64); // val = data[idx]
        b.fetch_add(scratch, val, bins_base as i64, one); // bins[val] += 1
    });
    let total_streams = (PROCS * STREAMS) as i64;
    emit_barrier(
        &mut b,
        bar_count,
        bar_gen,
        total_streams,
        Reg(9),
        Reg(10),
        Reg(11),
        Reg(12),
    );
    // Each stream sums a strided slice of the bins into the global cell.
    // (BINS < total streams, so most streams add nothing.)
    let bin_idx = Reg(13);
    let bins_lim = Reg(14);
    b.mov(bin_idx, Reg(1));
    b.li(bins_lim, BINS as i64);
    let no_work = b.bge_fwd(bin_idx, bins_lim);
    b.load(val, bin_idx, bins_base as i64);
    b.fetch_add_imm(scratch, check_acc as i64, val);
    b.bind(no_work);
    b.halt();
    let prog = b.build();

    println!("program: {} instructions", prog.len());
    println!(
        "{}",
        &prog.disassemble()[..400.min(prog.disassemble().len())]
    );

    let report = m.run(&prog, STREAMS, |_, _| {});
    println!(
        "ran on {PROCS} processors x {STREAMS} streams: {} cycles = {:.3} ms simulated, \
         utilization {:.0}%, {} fetch_adds, {} sync retries",
        report.cycles,
        report.seconds * 1e3,
        report.utilization * 100.0,
        report.mem.fetch_adds,
        report.sync_retries
    );

    // Verify against the host.
    let mut expect = vec![0i64; BINS];
    for &d in &data {
        expect[d as usize] += 1;
    }
    let got = m.memory().peek_slice(bins_base, BINS);
    assert_eq!(got, expect, "histogram must match host computation");
    assert_eq!(m.memory().peek(check_acc), N as i64, "on-machine checksum");
    println!("histogram verified: {BINS} bins, {N} samples, checksum on-machine = N.");
}
