//! Quickstart: the two kernels of the paper, run natively and verified
//! against their sequential oracles.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use archgraph::concomp::{shiloach_vishkin, sv_mta_style};
use archgraph::graph::gen;
use archgraph::graph::list::LinkedList;
use archgraph::graph::rng::Rng;
use archgraph::graph::unionfind::{component_count, connected_components, same_partition};
use archgraph::listrank::{helman_jaja, mta_style_rank, sequential_rank, HjConfig, MtaStyleConfig};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("host exposes {cores} CPU core(s); parallel speedup requires > 1.\n");

    // ---------- list ranking ----------
    let n = 1 << 20;
    let list = LinkedList::random(n, &mut Rng::new(42));
    println!("ranking a {n}-element Random list...");

    let t0 = std::time::Instant::now();
    let seq = sequential_rank(&list);
    let t_seq = t0.elapsed();

    let t0 = std::time::Instant::now();
    let hj = helman_jaja(&list, &HjConfig::with_threads(cores.max(2)));
    let t_hj = t0.elapsed();

    let t0 = std::time::Instant::now();
    let walks = mta_style_rank(&list, &MtaStyleConfig::for_list(n, cores.max(2)));
    let t_walks = t0.elapsed();

    assert_eq!(hj, seq, "Helman-JaJa must match the sequential oracle");
    assert_eq!(walks, seq, "the walk algorithm must match too");
    println!("  sequential        {t_seq:?}");
    println!(
        "  Helman-JaJa       {t_hj:?}  (speedup {:.2}x)",
        t_seq.as_secs_f64() / t_hj.as_secs_f64()
    );
    println!(
        "  MTA-style walks   {t_walks:?}  (speedup {:.2}x)",
        t_seq.as_secs_f64() / t_walks.as_secs_f64()
    );

    // ---------- connected components ----------
    let nv = 1 << 17;
    let g = gen::random_gnm(nv, 4 * nv, 7);
    println!("\nconnected components of G({nv}, {} edges)...", g.m());

    let t0 = std::time::Instant::now();
    let oracle = connected_components(&g);
    let t_uf = t0.elapsed();

    let t0 = std::time::Instant::now();
    let sv = shiloach_vishkin(&g);
    let t_sv = t0.elapsed();

    let t0 = std::time::Instant::now();
    let sv3 = sv_mta_style(&g);
    let t_sv3 = t0.elapsed();

    assert!(same_partition(&sv, &oracle));
    assert!(same_partition(&sv3, &oracle));
    println!("  union-find (seq)        {t_uf:?}");
    println!("  Shiloach-Vishkin Alg.2  {t_sv:?}");
    println!("  Shiloach-Vishkin Alg.3  {t_sv3:?}");
    println!("  components found: {}", component_count(&g));
    println!("\nall parallel results verified against sequential oracles.");
}
