//! Rooted-tree analytics via the Euler-tour technique — the application
//! family the paper's introduction motivates list ranking with (tree
//! computations, expression evaluation, rooted spanning trees).
//!
//! Pipeline: random graph → spanning forest (SV graft witnesses) → Euler
//! tour of the largest tree → list-rank the tour (Helman–JáJá) → parents,
//! depths (±1 prefix), subtree sizes — all verified against a BFS oracle.
//!
//! ```text
//! cargo run --release --example tree_analytics
//! ```

use archgraph::apps::centroid::centroid;
use archgraph::apps::euler::Ranker;
use archgraph::apps::{RootedAnalysis, Tree};
use archgraph::concomp::spanning::spanning_forest;
use archgraph::graph::edgelist::EdgeList;
use archgraph::graph::gen;
use archgraph::graph::unionfind::connected_components;
use archgraph::graph::Node;

fn main() {
    // 1. A random graph and its spanning forest.
    let n = 1 << 16;
    let g = gen::random_gnm(n, 3 * n, 77);
    let forest = spanning_forest(&g);
    println!(
        "graph: n = {n}, m = {}; spanning forest has {} edges",
        g.m(),
        forest.len()
    );

    // 2. Extract the giant component's tree (relabel vertices compactly).
    let labels = connected_components(&g);
    let giant = {
        let mut counts = std::collections::HashMap::new();
        for &l in &labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        *counts.iter().max_by_key(|&(_, c)| *c).unwrap().0
    };
    let mut remap = vec![Node::MAX; n];
    let mut nv = 0usize;
    for v in 0..n {
        if labels[v] == giant {
            remap[v] = nv as Node;
            nv += 1;
        }
    }
    let tree_edges: Vec<(Node, Node)> = forest
        .iter()
        .filter(|e| labels[e.u as usize] == giant)
        .map(|e| (remap[e.u as usize], remap[e.v as usize]))
        .collect();
    let tree = Tree::new(EdgeList::from_pairs(nv, tree_edges))
        .expect("forest restricted to one component is a tree");
    println!(
        "giant component: {nv} vertices ({:.1}% of the graph)",
        100.0 * nv as f64 / n as f64
    );

    // 3. Euler tour + ranking + analytics, rooted at vertex 0.
    let t0 = std::time::Instant::now();
    let analysis = RootedAnalysis::compute(&tree, 0, Ranker::HelmanJaja(4), 4);
    let elapsed = t0.elapsed();

    // 4. Verify against the BFS oracle.
    let oracle = tree.rooted_oracle(0);
    assert_eq!(analysis.parent, oracle.parent);
    assert_eq!(analysis.depth, oracle.depth);
    assert_eq!(analysis.size, oracle.size);

    let c = centroid(&tree, Ranker::HelmanJaja(4), 4);
    let max_depth = *analysis.depth.iter().max().unwrap();
    let leaves = analysis.size.iter().filter(|&&s| s == 1).count();
    let mean_depth = analysis.depth.iter().map(|&d| d as f64).sum::<f64>() / nv as f64;
    println!("Euler-tour analytics in {elapsed:?} (verified against BFS):");
    println!("  height (max depth): {max_depth}");
    println!("  mean depth:         {mean_depth:.2}");
    println!("  leaves:             {leaves}");
    println!(
        "  root subtree size:  {} (= n, as it must be)",
        analysis.size[0]
    );
    println!(
        "  centroid(s):        {:?} (largest removed component: {} <= n/2)",
        c.vertices, c.weight
    );
}
