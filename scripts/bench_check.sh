#!/usr/bin/env bash
# Diff a fresh bench run against the committed baseline.
#
# Runs the `bench` driver into a temp file and compares it with
# BENCH_archgraph.json at the repo root:
#
#   * `sim` fingerprints (cycles, issued, instructions, accesses) must be
#     bit-identical — drift means the simulators changed behaviour.
#   * `host_seconds` per cell must stay within BENCH_TOLERANCE (default
#     2.0x) of the baseline. Slower than the band fails; much faster only
#     warns, suggesting a baseline refresh.
#
# Usage:  scripts/bench_check.sh [fresh.json]
#   With an argument, compares that file instead of running the driver —
#   useful for inspecting a run you already have.
#
# Refresh the baseline (after an intentional perf or behaviour change):
#   cargo run --release --offline -p archgraph-bench --bin bench
#   git add BENCH_archgraph.json

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_archgraph.json
TOL="${BENCH_TOLERANCE:-2.0}"

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_check: missing baseline $BASELINE (run the bench driver and commit it)" >&2
    exit 1
fi

if [[ $# -ge 1 ]]; then
    FRESH="$1"
else
    FRESH="$(mktemp /tmp/bench_fresh.XXXXXX.json)"
    trap 'rm -f "$FRESH"' EXIT
    cargo run --release --offline -p archgraph-bench --bin bench -- --out "$FRESH"
fi

python3 - "$BASELINE" "$FRESH" "$TOL" <<'EOF'
import json, sys

base_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
base = json.load(open(base_path))
fresh = json.load(open(fresh_path))

failures = []
warnings = []

if base.get("schema") != fresh.get("schema"):
    failures.append(f"schema mismatch: baseline {base.get('schema')} vs fresh {fresh.get('schema')}")

bcells = {c["name"]: c for c in base.get("cells", [])}
fcells = {c["name"]: c for c in fresh.get("cells", [])}

for name in sorted(set(bcells) | set(fcells)):
    if name not in fcells:
        failures.append(f"{name}: present in baseline but missing from fresh run")
        continue
    if name not in bcells:
        failures.append(f"{name}: new cell not in baseline (refresh the baseline)")
        continue
    b, f = bcells[name], fcells[name]
    if b["sim"] != f["sim"]:
        failures.append(f"{name}: sim fingerprint drifted: baseline {b['sim']} vs fresh {f['sim']}")
    bt, ft = b["host_seconds"], f["host_seconds"]
    if ft > bt * tol:
        failures.append(f"{name}: {ft:.4f} s exceeds baseline {bt:.4f} s x{tol} tolerance")
    elif bt > ft * tol:
        warnings.append(f"{name}: {ft:.4f} s is much faster than baseline {bt:.4f} s — consider refreshing the baseline")
    else:
        print(f"  ok {name}: {ft:.4f} s (baseline {bt:.4f} s), sim fingerprint identical")

for w in warnings:
    print(f"  warn {w}")
if failures:
    for msg in failures:
        print(f"  FAIL {msg}", file=sys.stderr)
    sys.exit(1)
print("bench_check: all cells within tolerance, fingerprints identical")
EOF
