#!/usr/bin/env bash
# Diff a fresh bench run against the committed baseline.
#
# Runs the `bench` driver into a temp file and compares it with
# BENCH_archgraph.json at the repo root:
#
#   * `sim` fingerprints (cycles, issued, util_ppm, instructions,
#     accesses) must be bit-identical — drift means the simulators
#     changed behaviour. This check always applies, on every host.
#   * `host_seconds` per cell must stay within BENCH_TOLERANCE of the
#     baseline. Slower than the band fails; much faster only warns,
#     suggesting a baseline refresh.
#
# Environment:
#   BENCH_TOLERANCE   Host wall-clock band as a multiplier (default 2.0:
#                     a cell fails if it is more than 2x slower than the
#                     committed baseline). Only meaningful on hardware
#                     comparable to where the baseline was recorded.
#   CI                When set to a non-empty value (hosted runners),
#                     host_seconds tolerances are SKIPPED entirely —
#                     shared-runner wall clocks are noise — while the
#                     fingerprint comparison stays exact.
#   GITHUB_STEP_SUMMARY  When set (GitHub Actions), a per-cell markdown
#                     table is appended to the job summary.
#
# Usage:  scripts/bench_check.sh [fresh.json]
#   With an argument, compares that file instead of running the driver —
#   useful for inspecting a run you already have.
#
# Exit codes:
#   0  fingerprints identical, times within tolerance
#   1  fingerprint drift or wall-clock regression
#   2  STALE BASELINE — the committed baseline's cell *names* no longer
#      match what the bench binary emits (cells were added, removed, or
#      renamed without refreshing BENCH_archgraph.json). Distinct from 1
#      so CI and developers can tell "the simulators changed behaviour"
#      apart from "someone forgot to re-record the baseline".
#
# Refresh the baseline (after an intentional perf or behaviour change):
#   cargo run --release --offline -p archgraph-bench --bin bench
#   git add BENCH_archgraph.json

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

BASELINE=BENCH_archgraph.json
TOL="${BENCH_TOLERANCE:-2.0}"
CI_MODE="${CI:-}"

if [[ ! -f "$BASELINE" ]]; then
    echo "bench_check: missing baseline $BASELINE (run the bench driver and commit it)" >&2
    exit 1
fi

if [[ $# -ge 1 ]]; then
    FRESH="$1"
else
    FRESH="$(mktemp /tmp/bench_fresh.XXXXXX.json)"
    trap 'rm -f "$FRESH"' EXIT
    cargo run --release --offline -p archgraph-bench --bin bench -- --out "$FRESH"
fi

python3 - "$BASELINE" "$FRESH" "$TOL" "$CI_MODE" <<'EOF'
import json, os, sys

base_path, fresh_path, tol, ci = sys.argv[1], sys.argv[2], float(sys.argv[3]), bool(sys.argv[4])
base = json.load(open(base_path))
fresh = json.load(open(fresh_path))

failures = []
warnings = []
stale = []  # baseline cell-name drift: exit 2, not 1
rows = []  # (name, fresh s, baseline s, fingerprint status, time status)

if base.get("schema") != fresh.get("schema"):
    failures.append(f"schema mismatch: baseline {base.get('schema')} vs fresh {fresh.get('schema')}")

if ci:
    print("bench_check: CI mode — host_seconds tolerances skipped, fingerprints exact")

bcells = {c["name"]: c for c in base.get("cells", [])}
fcells = {c["name"]: c for c in fresh.get("cells", [])}

for name in sorted(set(bcells) | set(fcells)):
    if name not in fcells:
        stale.append(f"{name}: committed in the baseline but the bench binary no longer emits it")
        rows.append((name, None, bcells[name].get("host_seconds"), "stale", "-"))
        continue
    if name not in bcells:
        stale.append(f"{name}: emitted by the bench binary but missing from the committed baseline")
        rows.append((name, fcells[name].get("host_seconds"), None, "new", "-"))
        continue
    b, f = bcells[name], fcells[name]
    fp_ok = b["sim"] == f["sim"]
    if not fp_ok:
        failures.append(f"{name}: sim fingerprint drifted: baseline {b['sim']} vs fresh {f['sim']}")
    bt, ft = b["host_seconds"], f["host_seconds"]
    if ci:
        t_status = "skipped"
    elif ft > bt * tol:
        failures.append(f"{name}: {ft:.4f} s exceeds baseline {bt:.4f} s x{tol} tolerance")
        t_status = "slow"
    elif bt > ft * tol:
        warnings.append(f"{name}: {ft:.4f} s is much faster than baseline {bt:.4f} s — consider refreshing the baseline")
        t_status = "fast"
    else:
        t_status = "ok"
    rows.append((name, ft, bt, "ok" if fp_ok else "DRIFT", t_status))
    if fp_ok and t_status in ("ok", "skipped"):
        print(f"  ok {name}: {ft:.4f} s (baseline {bt:.4f} s), sim fingerprint identical")

summary = os.environ.get("GITHUB_STEP_SUMMARY")
if summary:
    with open(summary, "a") as fh:
        fh.write("### bench_check\n\n")
        fh.write("| cell | fresh (s) | baseline (s) | fingerprint | time |\n")
        fh.write("|---|---:|---:|---|---|\n")
        for name, ft, bt, fp, ts in rows:
            fts = f"{ft:.4f}" if ft is not None else "-"
            bts = f"{bt:.4f}" if bt is not None else "-"
            fh.write(f"| {name} | {fts} | {bts} | {fp} | {ts} |\n")
        fh.write("\n")

for w in warnings:
    print(f"  warn {w}")
for msg in failures:
    print(f"  FAIL {msg}", file=sys.stderr)
for msg in stale:
    print(f"  STALE {msg}", file=sys.stderr)
if stale:
    print("bench_check: stale baseline — refresh BENCH_archgraph.json and commit it", file=sys.stderr)
    sys.exit(2)
if failures:
    sys.exit(1)
print("bench_check: all cells within tolerance, fingerprints identical")
EOF
