#!/usr/bin/env bash
# Chaos soak: sweep structural fault grids across engines and worker
# counts, asserting the determinism contract under duress — the same
# fault plan must produce byte-identical simulator fingerprints no
# matter which MTA engine runs it or how many host workers the
# partitioned engine uses.
#
# Each grid plan is exported as the ambient ARCHGRAPH_FAULTS, then the
# full bench suite runs under engine/worker pins and the "sim" lines are
# diffed against the trace-engine reference. Plans mix the structural
# axis (stall=, link-latency=, brownout=) with the address-keyed one
# (mem-latency=, wake-delay=); stuck-full/stuck-empty are deliberately
# absent — wedged tags can deadlock sync kernels, which is a different
# contract (exercised by the guardrails suite), not an invariance sweep.
#
# --full additionally (a) widens the grid, (b) adds the compiled engine
# and W=2, and (c) runs a kill/resume soak: an archgraphd with an
# ambient fault plan is SIGTERMed mid-sweep, restarted on the same
# cache, and the resumed job's fingerprints must be byte-identical to an
# uninterrupted reference run under the same plan. One fresh cache dir
# per plan: ambient faults are not part of the cell spec, so results
# computed under different ambient plans must never share a cache.
#
# Usage:  scripts/chaos_soak.sh [--full] [OUT_DIR]   (default: chaos-soak)

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

FULL=0
if [[ "${1:-}" == "--full" ]]; then
    FULL=1
    shift
fi
OUT_DIR="${1:-chaos-soak}"
mkdir -p "$OUT_DIR"

PLANS=(
    "stall=30,stall-period=300:7"
    "link-latency=60,rate=1:7"
    "stall=40,stall-period=240,link-latency=60,brownout=2,brownout-at=2000,rate=1:11"
)
RUNS=(
    "trace 1"
    "partitioned 1"
    "partitioned 4"
)
if [[ "$FULL" == 1 ]]; then
    PLANS+=(
        "brownout=6,brownout-at=1000,brownout-for=50000:3"
        "mem-latency=30,wake-delay=9,stall=20,stall-period=500,link-latency=40,brownout=2,rate=2:13"
    )
    RUNS+=(
        "compiled 1"
        "partitioned 2"
    )
fi

BENCH=target/release/bench
DAEMON=target/release/archgraphd
CLIENT=target/release/archgraph-client
if [[ ! -x "$BENCH" || ! -x "$DAEMON" || ! -x "$CLIENT" ]]; then
    cargo build --release --offline -p archgraph-bench -p archgraphd
fi

echo "== chaos soak: ${#PLANS[@]} fault plans x ${#RUNS[@]} engine/worker pins =="
pi=0
for plan in "${PLANS[@]}"; do
    pi=$((pi + 1))
    ref=""
    for run in "${RUNS[@]}"; do
        read -r engine workers <<< "$run"
        out="$OUT_DIR/plan${pi}-${engine}-w${workers}.json"
        ARCHGRAPH_FAULTS="$plan" \
        ARCHGRAPH_MTA_ENGINE="$engine" \
        ARCHGRAPH_MTA_WORKERS="$workers" \
            "$BENCH" --out "$out" --reps 1
        if [[ -z "$ref" ]]; then
            ref="$out"
            continue
        fi
        if ! diff <(grep '"sim"' "$ref") <(grep '"sim"' "$out") > /dev/null; then
            echo "chaos_soak: FAIL — plan \"$plan\": $engine/W=$workers fingerprints" >&2
            echo "            diverge from ${ref##*/}" >&2
            diff <(grep '"sim"' "$ref") <(grep '"sim"' "$out") | head -20 >&2
            exit 1
        fi
    done
    echo "-- plan \"$plan\": all pins byte-identical"
done

if [[ "$FULL" != 1 ]]; then
    echo "chaos_soak: small grid passed (results in $OUT_DIR/)"
    exit 0
fi

echo "== kill/resume soak under an ambient fault plan =="
SOAK_PLAN="stall=30,stall-period=300,link-latency=60,brownout=2,rate=1:11"
CELLS=(
    color/mta/p8
    bfs/mta/p8
    fig2/mta/p8
    table1/mta/cc/p8
    euler/mta/p8
    sync/mta/p8
    fig1/mta/random/p8
    fig1/mta-partitioned/random/p8
)

WORK="$(mktemp -d /tmp/archgraph-chaos.XXXXXX)"
DPID=""
cleanup() {
    if [[ -n "$DPID" ]] && kill -0 "$DPID" 2>/dev/null; then
        kill "$DPID" 2>/dev/null || true
        wait "$DPID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() { # $1 = socket, $2 = cache dir — ambient plan exported
    ARCHGRAPH_FAULTS="$SOAK_PLAN" \
        "$DAEMON" --socket "$1" --jobs 1 --max-queue 128 --cache-dir "$2" &
    DPID=$!
    for _ in $(seq 1 300); do
        [[ -S "$1" ]] && return 0
        kill -0 "$DPID" 2>/dev/null || break
        sleep 0.1
    done
    echo "chaos_soak: FAIL — daemon did not come up on $1" >&2
    exit 1
}

echo "-- reference leg: uninterrupted sweep under \"$SOAK_PLAN\""
SOCK_A="$WORK/a.sock"
start_daemon "$SOCK_A" "$WORK/cache-a"
"$CLIENT" --socket "$SOCK_A" submit "${CELLS[@]}" > "$OUT_DIR/soak-reference.jsonl"
"$CLIENT" --socket "$SOCK_A" shutdown > /dev/null
wait "$DPID"
DPID=""

echo "-- interrupt leg: SIGTERM mid-sweep"
SOCK_B="$WORK/b.sock"
start_daemon "$SOCK_B" "$WORK/cache-b"
"$CLIENT" --socket "$SOCK_B" --retries 3 submit "${CELLS[@]}" \
    > "$OUT_DIR/soak-interrupted.jsonl" &
CPID=$!
# Kill as soon as the first cell streams: release-build cells finish in
# fractions of a second, so waiting for more risks the sweep completing
# before the SIGTERM lands.
for _ in $(seq 1 2400); do
    done_cells=$(grep -c '"type":"cell"' "$OUT_DIR/soak-interrupted.jsonl" 2>/dev/null || true)
    [[ "${done_cells:-0}" -ge 1 ]] && break
    sleep 0.05
done
kill -TERM "$DPID"
if ! wait "$DPID"; then
    echo "chaos_soak: FAIL — SIGTERM drain exited nonzero under faults" >&2
    exit 1
fi
DPID=""
wait "$CPID" || true # truncated client stream is the point

echo "-- resume leg: restart on the same cache, same ambient plan"
start_daemon "$SOCK_B" "$WORK/cache-b"
"$CLIENT" --socket "$SOCK_B" --retries 3 submit "${CELLS[@]}" \
    > "$OUT_DIR/soak-resumed.jsonl"
"$CLIENT" --socket "$SOCK_B" shutdown > /dev/null
wait "$DPID"
DPID=""

python3 - "$OUT_DIR" <<'EOF'
import json, os, sys

out_dir = sys.argv[1]

def cells_of(path):
    cells, done = {}, None
    for line in open(path):
        ev = json.loads(line)
        if ev.get("type") == "cell" and "sim" in ev:
            cells[ev["name"]] = ev
        elif ev.get("type") == "done":
            done = ev
    return cells, done

ref, ref_done = cells_of(os.path.join(out_dir, "soak-reference.jsonl"))
pre_kill, _ = cells_of(os.path.join(out_dir, "soak-interrupted.jsonl"))
res, res_done = cells_of(os.path.join(out_dir, "soak-resumed.jsonl"))

fails = []
if ref_done is None or ref_done["failed"] or ref_done["cancelled"]:
    fails.append(f"reference leg did not complete cleanly: {ref_done}")
if res_done is None or res_done["failed"] or res_done["cancelled"]:
    fails.append(f"resumed leg did not complete cleanly: {res_done}")
if set(ref) != set(res):
    fails.append(f"cell sets differ: {sorted(set(ref) ^ set(res))}")
for name, ev in sorted(res.items()):
    if name in ref and ev["sim"] != ref[name]["sim"]:
        fails.append(f"{name}: resumed fingerprint != reference under faults")
for name, ev in sorted(pre_kill.items()):
    if name not in res:
        continue
    if not res[name]["cached"]:
        fails.append(f"{name}: completed pre-kill but re-ran on resume")
    if res[name]["sim"] != ev["sim"]:
        fails.append(f"{name}: pre-kill fingerprint changed on resume")
if not pre_kill:
    fails.append("no cells completed before the kill — the kill landed too early")

for f in fails:
    print(f"  FAIL {f}", file=sys.stderr)
if fails:
    sys.exit(1)
print(
    f"chaos_soak: {len(res)} cells resumed byte-identically under the ambient "
    f"plan ({len(pre_kill)} pre-kill cells cache-served)"
)
EOF

echo "chaos_soak: full grid + kill/resume soak passed (results in $OUT_DIR/)"
