#!/usr/bin/env bash
# Tier-1 gate: format, lint, build, test, then bench regression check.
# Everything runs --offline — the workspace vendors its external deps as
# local shims (see shims/) and must never reach for the network.
#
# Usage:  scripts/ci.sh
#
# This is the same entry point .github/workflows/ci.yml runs; setting
# CI=1 makes the bench step skip host wall-clock tolerances (simulator
# fingerprints are still exact — see scripts/bench_check.sh).

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

echo "== toolchain =="
cargo --version
rustc --version

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== engine differential smoke =="
# Re-run the simulator and kernel suites with each MTA engine as the
# session default. The kernel tests pin simulated cycle/utilization
# quantities, so any engine whose schedule diverges from the oracle
# fails loudly here — the env-var path is exactly what users reach for
# (ARCHGRAPH_MTA_ENGINE), so it is the path this leg exercises.
for engine in single-step trace compiled partitioned; do
    echo "-- ARCHGRAPH_MTA_ENGINE=$engine"
    ARCHGRAPH_MTA_ENGINE="$engine" \
        cargo test -q --offline -p archgraph-mta-sim -p archgraph-listrank \
        -p archgraph-concomp -p archgraph-coloring -p archgraph-bfs
done

echo "== guardrails: deadlock + fault injection under every engine =="
# The guardrails suite already cross-checks all four engines internally,
# but this leg additionally sets a global fault plan so *every* mta-sim
# test (differential suites included) runs on a perturbed memory system:
# schedules shift, results and deadlock diagnostics must not.
for engine in single-step trace compiled partitioned; do
    echo "-- ARCHGRAPH_MTA_ENGINE=$engine + ARCHGRAPH_FAULTS"
    ARCHGRAPH_MTA_ENGINE="$engine" \
    ARCHGRAPH_FAULTS="mem-latency=30,rate=1:9" \
        cargo test -q --offline -p archgraph-mta-sim --test guardrails
done

echo "== sweep isolation: a panicking cell must not kill the driver =="
# Inject a deliberate panic into one fig1 cell; the binary must finish
# the rest of the grid, report the failure, and exit nonzero.
if ARCHGRAPH_BENCH_PANIC_CELL="fig1/smp/Random/p1/n4096" \
    cargo run --release --offline -p archgraph-bench --bin fig1 -- smoke --arch smp \
    > /dev/null 2>&1; then
    echo "ci: FAIL — fig1 exited zero despite an injected cell panic" >&2
    exit 1
fi
echo "-- injected panic isolated and reported (nonzero exit), as required"

echo "== partitioned engine: full/empty sync programs =="
# Phase-2 contract: programs with readfe/writeef/readff run on the real
# partitioned path — guardrails asserts EngineStats.windows > 0, i.e. no
# interpreter fallback — and the readfe-contended sync cell fingerprints
# identically at pinned worker counts. This leg runs the sync-heavy
# suites with the partitioned engine as the session default at W=1 and
# W=4 so a tag-merge or replay divergence reports here by name.
for w in 1 4; do
    echo "-- ARCHGRAPH_MTA_ENGINE=partitioned ARCHGRAPH_MTA_WORKERS=$w (sync suites)"
    ARCHGRAPH_MTA_ENGINE=partitioned ARCHGRAPH_MTA_WORKERS="$w" \
        cargo test -q --offline -p archgraph-mta-sim --test guardrails
    ARCHGRAPH_MTA_ENGINE=partitioned ARCHGRAPH_MTA_WORKERS="$w" \
        cargo test -q --offline -p archgraph-bench --lib sync_cell
done

echo "== partitioned engine: worker-count identity =="
# The partitioned engine's determinism contract: simulation fingerprints
# must be byte-identical for every worker count. Run the bench cells
# (fingerprints only, 1 rep) at W=1 and W=4 and diff the "sim" lines —
# any difference is a merge-order bug, not noise.
w1="$(mktemp)" w4="$(mktemp)"
trap 'rm -f "$w1" "$w4"' EXIT
ARCHGRAPH_MTA_WORKERS=1 \
    cargo run --release --offline -p archgraph-bench --bin bench -- --out "$w1" --reps 1
ARCHGRAPH_MTA_WORKERS=4 \
    cargo run --release --offline -p archgraph-bench --bin bench -- --out "$w4" --reps 1
if ! diff <(grep '"sim"' "$w1") <(grep '"sim"' "$w4"); then
    echo "ci: FAIL — partitioned-engine fingerprints differ between W=1 and W=4" >&2
    exit 1
fi
# The sync cells must be in the diffed set: they are the suite's only
# readfe/writeef-contended programs, and the W-identity claim is
# strongest exactly there.
for cell in "sync/mta/p8" "sync/mta-partitioned/w1/p8" "sync/mta-partitioned/w4/p8"; do
    if ! grep -q "\"name\": \"$cell\"" "$w1"; then
        echo "ci: FAIL — sync cell $cell missing from the bench suite output" >&2
        exit 1
    fi
done

echo "== archgraphd daemon smoke =="
# Serve the FULL bench suite through the daemon and diff every streamed
# fingerprint byte-for-byte against the W=1 bench output from the
# previous leg. The leg also pins the serving hardening end to end: a
# 1-cell job must complete mid-sweep under --jobs 1 (round-robin
# fairness), `list` must track per-cell cache status, a tiny
# --cache-max-bytes daemon must evict and still re-run identically, and
# shutdown must be clean (exit 0, socket removed). See
# scripts/daemon_smoke.sh.
scripts/daemon_smoke.sh "$w1"

echo "== chaos soak: structural-fault invariance (small grid) =="
# Sweep the small structural-fault grid (stalls, degraded links,
# brownouts, and a combined plan) across engine/worker pins, asserting
# byte-identical fingerprints under every plan. The nightly workflow
# runs the same script with --full: a wider grid plus a SIGTERM/restart
# of archgraphd under an ambient fault plan.
chaos_dir="$(mktemp -d)"
trap 'rm -f "$w1" "$w4"; rm -rf "$chaos_dir"' EXIT
scripts/chaos_soak.sh "$chaos_dir"

echo "== bench regression check =="
scripts/bench_check.sh

echo "ci: all gates passed"
