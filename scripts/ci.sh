#!/usr/bin/env bash
# Tier-1 gate: format, lint, build, test, then bench regression check.
# Everything runs --offline — the workspace vendors its external deps as
# local shims (see shims/) and must never reach for the network.
#
# Usage:  scripts/ci.sh
#
# This is the same entry point .github/workflows/ci.yml runs; setting
# CI=1 makes the bench step skip host wall-clock tolerances (simulator
# fingerprints are still exact — see scripts/bench_check.sh).

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

echo "== toolchain =="
cargo --version
rustc --version

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== engine differential smoke =="
# Re-run the simulator and kernel suites with each MTA engine as the
# session default. The kernel tests pin simulated cycle/utilization
# quantities, so any engine whose schedule diverges from the oracle
# fails loudly here — the env-var path is exactly what users reach for
# (ARCHGRAPH_MTA_ENGINE), so it is the path this leg exercises.
for engine in single-step trace compiled partitioned; do
    echo "-- ARCHGRAPH_MTA_ENGINE=$engine"
    ARCHGRAPH_MTA_ENGINE="$engine" \
        cargo test -q --offline -p archgraph-mta-sim -p archgraph-listrank -p archgraph-concomp
done

echo "== partitioned engine: worker-count identity =="
# The partitioned engine's determinism contract: simulation fingerprints
# must be byte-identical for every worker count. Run the bench cells
# (fingerprints only, 1 rep) at W=1 and W=4 and diff the "sim" lines —
# any difference is a merge-order bug, not noise.
w1="$(mktemp)" w4="$(mktemp)"
trap 'rm -f "$w1" "$w4"' EXIT
ARCHGRAPH_MTA_WORKERS=1 \
    cargo run --release --offline -p archgraph-bench --bin bench -- --out "$w1" --reps 1
ARCHGRAPH_MTA_WORKERS=4 \
    cargo run --release --offline -p archgraph-bench --bin bench -- --out "$w4" --reps 1
if ! diff <(grep '"sim"' "$w1") <(grep '"sim"' "$w4"); then
    echo "ci: FAIL — partitioned-engine fingerprints differ between W=1 and W=4" >&2
    exit 1
fi

echo "== bench regression check =="
scripts/bench_check.sh

echo "ci: all gates passed"
