#!/usr/bin/env bash
# Tier-1 gate: format, lint, build, test, then bench regression check.
# Everything runs --offline — the workspace vendors its external deps as
# local shims (see shims/) and must never reach for the network.
#
# Usage:  scripts/ci.sh
#
# This is the same entry point .github/workflows/ci.yml runs; setting
# CI=1 makes the bench step skip host wall-clock tolerances (simulator
# fingerprints are still exact — see scripts/bench_check.sh).

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

echo "== toolchain =="
cargo --version
rustc --version

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --offline -- -D warnings

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== bench regression check =="
scripts/bench_check.sh

echo "ci: all gates passed"
