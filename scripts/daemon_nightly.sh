#!/usr/bin/env bash
# Nightly daemon soak: a larger sweep through archgraphd, killed halfway
# and resumed, proving the kill/restart path end to end.
#
#   1. reference leg — serve a multi-cell job through a daemon with a
#      fresh cache, uninterrupted; record the stream and the throughput;
#   2. interrupt leg — serve the same job through a second daemon (own
#      fresh cache), SIGTERM it mid-stream, and assert it drains
#      gracefully (exit 0);
#   3. resume leg — restart the daemon on the same cache dir and socket,
#      resubmit, and assert the job completes with fingerprints
#      byte-identical to the reference leg (and to the committed bench
#      baseline for the suite cells), with the pre-kill cells served
#      from the cache;
#   4. write the three streams plus a machine-readable summary under
#      $OUT_DIR (uploaded as a CI artifact) and, when
#      GITHUB_STEP_SUMMARY is set, append a markdown table.
#
# Usage:  scripts/daemon_nightly.sh [OUT_DIR]   (default: daemon-nightly)

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

OUT_DIR="${1:-daemon-nightly}"
mkdir -p "$OUT_DIR"

# A representative slice of the bench suite: both machines, all MTA
# engine pins, list/graph/tree workloads. Big enough that a SIGTERM
# lands mid-sweep with --jobs 1, small enough for a nightly runner.
CELLS=(
    fig1/mta/random/p8
    fig1/mta-compiled/random/p8
    fig1/mta-partitioned/random/p8
    fig1/smp/random/p8
    fig2/mta/p8
    fig2/smp/p8
    table1/mta/cc/p8
    color/mta/p8
    color/smp/p8
    bfs/mta/p8
    bfs/smp/p8
    euler/mta/p8
)

DAEMON=target/release/archgraphd
CLIENT=target/release/archgraph-client
if [[ ! -x "$DAEMON" || ! -x "$CLIENT" ]]; then
    cargo build --release --offline -p archgraphd
fi

WORK="$(mktemp -d /tmp/archgraphd-nightly.XXXXXX)"
DPID=""
cleanup() {
    if [[ -n "$DPID" ]] && kill -0 "$DPID" 2>/dev/null; then
        kill "$DPID" 2>/dev/null || true
        wait "$DPID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() { # $1 = socket, $2 = cache dir
    "$DAEMON" --socket "$1" --jobs 1 --max-queue 128 --cache-dir "$2" &
    DPID=$!
    for _ in $(seq 1 300); do
        [[ -S "$1" ]] && return 0
        kill -0 "$DPID" 2>/dev/null || break
        sleep 0.1
    done
    echo "daemon_nightly: FAIL — daemon did not come up on $1" >&2
    exit 1
}

stop_daemon() { # clean shutdown through the client; daemon must exit 0
    "$CLIENT" --socket "$1" shutdown > /dev/null
    wait "$DPID"
    DPID=""
}

echo "== reference leg: uninterrupted sweep =="
SOCK_A="$WORK/a.sock"
start_daemon "$SOCK_A" "$WORK/cache-a"
t0=$(date +%s)
"$CLIENT" --socket "$SOCK_A" submit "${CELLS[@]}" > "$OUT_DIR/reference.jsonl"
t1=$(date +%s)
stop_daemon "$SOCK_A"
REF_SECONDS=$((t1 - t0))
echo "-- reference sweep: ${#CELLS[@]} cells in ${REF_SECONDS}s"

echo "== interrupt leg: SIGTERM mid-sweep =="
SOCK_B="$WORK/b.sock"
start_daemon "$SOCK_B" "$WORK/cache-b"
"$CLIENT" --socket "$SOCK_B" submit "${CELLS[@]}" > "$OUT_DIR/interrupted.jsonl" &
CPID=$!
# Kill the daemon once a few cells have streamed (mid-sweep by construction).
for _ in $(seq 1 600); do
    done_cells=$(grep -c '"type":"cell"' "$OUT_DIR/interrupted.jsonl" 2>/dev/null || true)
    [[ "${done_cells:-0}" -ge 3 ]] && break
    sleep 0.2
done
kill -TERM "$DPID"
if ! wait "$DPID"; then
    echo "daemon_nightly: FAIL — SIGTERM drain exited nonzero" >&2
    exit 1
fi
DPID=""
wait "$CPID" || true # the client may see a truncated stream; that's the point
if [[ -e "$SOCK_B" ]]; then
    echo "daemon_nightly: FAIL — drained daemon left its socket behind" >&2
    exit 1
fi

echo "== resume leg: restart on the same cache =="
start_daemon "$SOCK_B" "$WORK/cache-b"
"$CLIENT" --socket "$SOCK_B" submit "${CELLS[@]}" > "$OUT_DIR/resumed.jsonl"
stop_daemon "$SOCK_B"

python3 - "$OUT_DIR" "$REF_SECONDS" BENCH_archgraph.json <<'EOF'
import json, os, sys

out_dir, ref_seconds, baseline_path = sys.argv[1], int(sys.argv[2]), sys.argv[3]

def cells_of(path):
    cells, done = {}, None
    for line in open(path):
        ev = json.loads(line)
        if ev.get("type") == "cell" and "sim" in ev:
            cells[ev["name"]] = ev
        elif ev.get("type") == "done":
            done = ev
    return cells, done

ref, ref_done = cells_of(os.path.join(out_dir, "reference.jsonl"))
pre_kill, _ = cells_of(os.path.join(out_dir, "interrupted.jsonl"))
res, res_done = cells_of(os.path.join(out_dir, "resumed.jsonl"))

fails = []
if ref_done is None or ref_done["failed"] or ref_done["cancelled"]:
    fails.append(f"reference leg did not complete cleanly: {ref_done}")
if res_done is None or res_done["failed"] or res_done["cancelled"]:
    fails.append(f"resumed leg did not complete cleanly: {res_done}")
if set(ref) != set(res):
    fails.append(f"cell sets differ: {sorted(set(ref) ^ set(res))}")
for name, ev in sorted(res.items()):
    if name in ref and ev["sim"] != ref[name]["sim"]:
        fails.append(
            f"{name}: resumed fingerprint {ev['sim']} != reference {ref[name]['sim']}"
        )
# Cells that finished before the kill must resume from the cache, with
# the values recorded pre-kill.
for name, ev in sorted(pre_kill.items()):
    if name not in res:
        continue
    if not res[name]["cached"]:
        fails.append(f"{name}: completed pre-kill but re-ran on resume")
    if res[name]["sim"] != ev["sim"]:
        fails.append(f"{name}: pre-kill fingerprint changed on resume")
if not pre_kill:
    fails.append("no cells completed before the kill — the kill landed too early")
cached = res_done["cached"] if res_done else 0
if cached < len(pre_kill):
    fails.append(f"resume cached {cached} < {len(pre_kill)} pre-kill cells")

# Suite cells must also match the committed bench baseline exactly.
baseline = {c["name"]: c for c in json.load(open(baseline_path))["cells"]}
for name, ev in sorted(res.items()):
    if name in baseline and ev["sim"] != baseline[name]["sim"]:
        fails.append(
            f"{name}: daemon fingerprint {ev['sim']} != committed baseline {baseline[name]['sim']}"
        )

# Clamp to >= 1s so a sub-second sweep yields a finite lower bound.
throughput = len(ref) * 60.0 / max(ref_seconds, 1)
summary = {
    "cells": len(ref),
    "reference_seconds": ref_seconds,
    "cells_per_minute": round(throughput, 1),
    "completed_before_kill": len(pre_kill),
    "cached_on_resume": cached,
    "ok": not fails,
    "failures": fails,
}
with open(os.path.join(out_dir, "summary.json"), "w") as fh:
    json.dump(summary, fh, indent=2)
    fh.write("\n")

gh = os.environ.get("GITHUB_STEP_SUMMARY")
if gh:
    with open(gh, "a") as fh:
        fh.write("### archgraphd nightly kill/resume\n\n")
        fh.write(f"- cells: **{len(ref)}**, reference sweep: **{ref_seconds}s** ")
        fh.write(f"(~{summary['cells_per_minute']} cells/min through the daemon)\n")
        fh.write(f"- completed before SIGTERM: **{len(pre_kill)}**, cache-served on resume: **{cached}**\n\n")
        fh.write("| cell | sim (resumed) | cached on resume | identical to reference |\n")
        fh.write("|---|---|---|---|\n")
        for name, ev in sorted(res.items()):
            same = "yes" if name in ref and ev["sim"] == ref[name]["sim"] else "NO"
            fh.write(f"| {name} | `{json.dumps(ev['sim'])}` | {str(ev['cached']).lower()} | {same} |\n")
        fh.write("\n")
        if fails:
            fh.write("**FAILURES:**\n\n")
            for f in fails:
                fh.write(f"- {f}\n")

for f in fails:
    print(f"  FAIL {f}", file=sys.stderr)
if fails:
    sys.exit(1)
print(
    f"daemon_nightly: {len(res)} cells resumed identically "
    f"({len(pre_kill)} pre-kill cells cache-served, ~{summary['cells_per_minute']} cells/min)"
)
EOF

echo "daemon_nightly: all legs passed (results in $OUT_DIR/)"
