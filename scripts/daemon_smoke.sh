#!/usr/bin/env bash
# Daemon smoke leg: prove archgraphd serves the exact same experiment the
# bench driver runs, end to end over the wire — now through the fair
# (round-robin) scheduler and the bounded cache.
#
# Leg 1 — fair-share daemon (--jobs 1, fresh cache):
#   1. `list` cold: every bench-suite cell is reported, none cached;
#   2. submit the FULL suite as job A in the background; once A starts
#      streaming cells, submit a 1-cell job B (a raw spec, not in the
#      suite) and assert B completes while A is still mid-sweep — the
#      round-robin scheduler must not make B wait behind A's backlog;
#   3. wait for A and assert every streamed "sim" fingerprint is
#      BYTE-identical to the same cell in a --bin bench output ($1);
#   4. resubmit the suite: all cells served with "cached":true and the
#      identical fingerprints; `list` now reports every cell cached;
#   5. shut the daemon down through the client (exit 0, socket removed).
#
# Leg 2 — bounded-cache daemon (--cache-max-bytes far below one payload):
#   6. submit three suite cells, assert `status` reports evictions;
#   7. resubmit: nothing is cache-served (everything was evicted), yet
#      every fingerprint is still byte-identical — eviction is safe, a
#      miss just re-runs; clean shutdown again.
#
# Usage:  scripts/daemon_smoke.sh BENCH_JSON
#   BENCH_JSON is any bench driver output containing the full suite
#   (ci.sh passes the W=1 run it already produced for the partitioned
#   identity leg).

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

BENCH_JSON="${1:?usage: scripts/daemon_smoke.sh BENCH_JSON}"

DAEMON=target/release/archgraphd
CLIENT=target/release/archgraph-client
# Always build: archgraphd is not a workspace default member, so the
# tier-1 `cargo build --release` leg does not refresh these binaries. A
# stale pair here once let the smoke pass against an old, smaller suite
# (a no-op build costs well under a second when nothing changed).
cargo build --release --offline -p archgraphd

WORK="$(mktemp -d /tmp/archgraphd-smoke.XXXXXX)"
DPID=""
cleanup() {
    if [[ -n "$DPID" ]] && kill -0 "$DPID" 2>/dev/null; then
        kill "$DPID" 2>/dev/null || true
        wait "$DPID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "daemon_smoke: FAIL — $1" >&2
    exit 1
}

start_daemon() { # SOCKET ARGS...
    local sock="$1"
    shift
    "$DAEMON" --socket "$sock" "$@" &
    DPID=$!
    for _ in $(seq 1 300); do
        [[ -S "$sock" ]] && break
        kill -0 "$DPID" 2>/dev/null || fail "daemon died before binding its socket"
        sleep 0.1
    done
    [[ -S "$sock" ]] || fail "socket never appeared"
}

stop_daemon() { # SOCKET
    "$CLIENT" --socket "$1" shutdown > /dev/null
    wait "$DPID" || fail "daemon exited nonzero on clean shutdown"
    DPID=""
    [[ -e "$1" ]] && fail "socket file survived shutdown"
    return 0
}

# Shared checker: every "cell" event in a job stream must match the bench
# output byte-for-byte, with the expected cache disposition. The cache
# key excludes the engine pin (determinism contract), so engine-pinned
# suite variants legitimately hit the cache once their unpinned twin has
# run — a "fresh" stream therefore allows cached:true only for a cell
# whose cache key already completed earlier in the same stream.
cat > "$WORK/check.py" <<'EOF'
import json, sys

bench_path, stream_path, expect, min_cells, list_path = (
    sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4]), sys.argv[5],
)
bench_cells = {c["name"]: c for c in json.load(open(bench_path))["cells"]}
key_of = {c["name"]: c["key"] for c in json.load(open(list_path))["cells"]}

# Raw "sim" renderings from the bench JSON, for the byte-level check.
bench_raw = {}
current = None
for line in open(bench_path):
    s = line.strip()
    if s.startswith('"name":'):
        current = json.loads("{" + s.rstrip(",") + "}")["name"]
    elif s.startswith('"sim":') and current is not None:
        bench_raw[current] = s.split('"sim": ', 1)[1]

seen = {}
seen_keys = set()
for line in open(stream_path):
    ev = json.loads(line)
    t = ev.get("type")
    if t == "error":
        sys.exit(f"daemon_smoke: FAIL — daemon error: {ev}")
    if t == "done" and (ev["failed"] != 0 or ev["cancelled"] != 0):
        sys.exit(f"daemon_smoke: FAIL — job not fully ok: {ev}")
    if t != "cell":
        continue
    name = ev["name"]
    if "error" in ev:
        sys.exit(f"daemon_smoke: FAIL — cell {name} failed: {ev['error']}")
    if expect == "cached":
        if not ev["cached"]:
            sys.exit(f"daemon_smoke: FAIL — {name}: uncached on a warm replay")
    elif ev["cached"] and key_of.get(name) not in seen_keys:
        sys.exit(
            f"daemon_smoke: FAIL — {name}: cache-served, but its experiment "
            f"never ran in this stream"
        )
    seen_keys.add(key_of.get(name))
    if name not in bench_cells:
        sys.exit(f"daemon_smoke: FAIL — {name} not in the bench output")
    if ev["sim"] != bench_cells[name]["sim"]:
        sys.exit(
            f"daemon_smoke: FAIL — {name} fingerprint drift: "
            f"daemon {ev['sim']} vs bench {bench_cells[name]['sim']}"
        )
    # Byte identity of the rendered sim object: the daemon line ends
    # "...,\"sim\":{ ... }}" — strip the event's closing brace.
    daemon_sim = line.split('"sim":', 1)[1].strip()
    assert daemon_sim.endswith("}}"), daemon_sim
    if daemon_sim[:-1] != bench_raw[name]:
        sys.exit(
            f"daemon_smoke: FAIL — {name} sim rendering differs byte-wise: "
            f"daemon {daemon_sim[:-1]!r} vs bench {bench_raw[name]!r}"
        )
    seen[name] = ev["sim"]
if len(seen) < min_cells:
    sys.exit(
        f"daemon_smoke: FAIL — only {len(seen)} cells streamed, "
        f"expected at least {min_cells}"
    )
print(f"daemon_smoke: {len(seen)} cells byte-identical to bench ({expect})")
EOF

# ---------------------------------------------------------------- leg 1
SOCK="$WORK/archgraphd.sock"
start_daemon "$SOCK" --jobs 1 --cache-dir "$WORK/cache"

echo "-- list (cold cache)"
"$CLIENT" --socket "$SOCK" list > "$WORK/list_cold.json"
python3 - "$WORK/list_cold.json" "$WORK/names" "$BENCH_JSON" <<'EOF'
import json, sys
cells = json.load(open(sys.argv[1]))["cells"]
# The daemon's suite must be EXACTLY the bench binary's suite: a
# name-set drift in either direction means one of the two binaries is
# stale, and the byte-identity diff below would silently shrink.
bench_names = set()
for line in open(sys.argv[3]):
    s = line.strip()
    if s.startswith('"name":'):
        bench_names.add(json.loads("{" + s.rstrip(",") + "}")["name"])
daemon_names = {c["name"] for c in cells}
missing = sorted(bench_names - daemon_names)
extra = sorted(daemon_names - bench_names)
assert not missing and not extra, (
    f"daemon suite drifted from the bench output "
    f"(missing {missing}, extra {extra}) — stale archgraphd build?"
)
assert len(cells) >= 30, f"suite lists only {len(cells)} cells"
bad = [c["name"] for c in cells if c["cached"]]
assert not bad, f"cold cache but cells report cached: {bad}"
assert all(c["key"] for c in cells), "list entries must carry cache keys"
with open(sys.argv[2], "w") as f:
    f.write("\n".join(c["name"] for c in cells) + "\n")
print(f"daemon_smoke: list reports {len(cells)} suite cells, none cached")
EOF
mapfile -t SUITE < "$WORK/names"

echo "-- submit full suite (job A, background) + 1-cell job B"
"$CLIENT" --socket "$SOCK" submit "${SUITE[@]}" > "$WORK/first.jsonl" &
APID=$!
for _ in $(seq 1 600); do
    grep -q '"type":"cell"' "$WORK/first.jsonl" 2>/dev/null && break
    kill -0 "$APID" 2>/dev/null || break
    sleep 0.1
done
grep -q '"type":"cell"' "$WORK/first.jsonl" || fail "suite job never streamed a cell"

# Job B is a raw 1-cell spec (not a suite cell, so never cache-served).
# Under round-robin it must land within a couple of cell-times even
# though job A still has a deep backlog on the single worker.
"$CLIENT" --socket "$SOCK" submit-json \
    '{"kernel":"color","machine":"mta","p":2,"n":96,"m":288}' \
    > "$WORK/b.jsonl" || fail "interleaved 1-cell job failed"
cp "$WORK/first.jsonl" "$WORK/first_at_b.jsonl"
if grep -q '"type":"done"' "$WORK/first_at_b.jsonl"; then
    fail "suite job finished before the interleaved job — scheduler is not fair"
fi
python3 - "$WORK/b.jsonl" <<'EOF'
import json, sys
events = [json.loads(l) for l in open(sys.argv[1])]
done = [e for e in events if e.get("type") == "done"]
assert done and done[-1]["ok"] == 1 and done[-1]["failed"] == 0, events
EOF
echo "daemon_smoke: 1-cell job completed mid-sweep (fair interleaving)"

if ! wait "$APID"; then
    fail "suite job exited nonzero"
fi
python3 "$WORK/check.py" "$BENCH_JSON" "$WORK/first.jsonl" fresh "${#SUITE[@]}" "$WORK/list_cold.json"

echo "-- submit full suite (replay)"
"$CLIENT" --socket "$SOCK" submit "${SUITE[@]}" > "$WORK/second.jsonl"
python3 "$WORK/check.py" "$BENCH_JSON" "$WORK/second.jsonl" cached "${#SUITE[@]}" "$WORK/list_cold.json"

echo "-- list (warm cache)"
"$CLIENT" --socket "$SOCK" list > "$WORK/list_warm.json"
python3 - "$WORK/list_warm.json" <<'EOF'
import json, sys
cells = json.load(open(sys.argv[1]))["cells"]
bad = [c["name"] for c in cells if not c["cached"]]
assert not bad, f"suite was just run, but cells report uncached: {bad}"
print(f"daemon_smoke: list reports all {len(cells)} suite cells cached")
EOF

echo "-- shutdown (leg 1)"
stop_daemon "$SOCK"

# ---------------------------------------------------------------- leg 2
SOCK2="$WORK/archgraphd-bounded.sock"
start_daemon "$SOCK2" --jobs 2 --cache-dir "$WORK/cache-bounded" --cache-max-bytes 16

EVICT_CELLS=(fig2/mta/p8 bfs/smp/p8 color/mta/p8)
echo "-- bounded cache: submit ${EVICT_CELLS[*]} under --cache-max-bytes 16"
"$CLIENT" --socket "$SOCK2" submit "${EVICT_CELLS[@]}" > "$WORK/evict_first.jsonl"
python3 "$WORK/check.py" "$BENCH_JSON" "$WORK/evict_first.jsonl" fresh 3 "$WORK/list_cold.json"

"$CLIENT" --socket "$SOCK2" status > "$WORK/status_bounded.json"
python3 - "$WORK/status_bounded.json" <<'EOF'
import json, sys
st = json.load(open(sys.argv[1]))
assert st["evictions"] >= 1, f"bounded cache never evicted: {st}"
assert st["cache_bytes"] <= 16, f"cache exceeds its bound: {st}"
assert "cache_entries" in st and "evicted_bytes" in st, st
print(
    f"daemon_smoke: bounded cache evicted {st['evictions']} entries "
    f"({st['evicted_bytes']} bytes), footprint {st['cache_bytes']} bytes"
)
EOF

# Every payload exceeds the 16-byte bound, so nothing survives the sweep:
# the re-run is fully uncached yet must reproduce the exact same bytes.
"$CLIENT" --socket "$SOCK2" submit "${EVICT_CELLS[@]}" > "$WORK/evict_second.jsonl"
python3 "$WORK/check.py" "$BENCH_JSON" "$WORK/evict_second.jsonl" fresh 3 "$WORK/list_cold.json"
echo "daemon_smoke: post-eviction re-run is uncached and byte-identical"

echo "-- shutdown (leg 2)"
stop_daemon "$SOCK2"

echo "daemon_smoke: fair scheduling, suite identity, bounded cache all verified"
