#!/usr/bin/env bash
# Daemon smoke leg: prove archgraphd serves the exact same experiment the
# bench driver runs, end to end over the wire.
#
#   1. start archgraphd on a temp Unix socket with a fresh cache;
#   2. submit two bench-suite cells through archgraph-client and assert
#      every streamed "sim" fingerprint is BYTE-identical to the same
#      cell in a --bin bench output (passed as $1);
#   3. resubmit the same cells and assert both are served with
#      "cached":true and the identical fingerprints;
#   4. shut the daemon down through the client and assert it exits 0 and
#      removes its socket file.
#
# Usage:  scripts/daemon_smoke.sh BENCH_JSON
#   BENCH_JSON is any bench driver output containing the probed cells
#   (ci.sh passes the W=1 run it already produced for the partitioned
#   identity leg).

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

BENCH_JSON="${1:?usage: scripts/daemon_smoke.sh BENCH_JSON}"
CELLS=(fig2/mta/p8 bfs/smp/p8)

DAEMON=target/release/archgraphd
CLIENT=target/release/archgraph-client
if [[ ! -x "$DAEMON" || ! -x "$CLIENT" ]]; then
    cargo build --release --offline -p archgraphd
fi

WORK="$(mktemp -d /tmp/archgraphd-smoke.XXXXXX)"
SOCK="$WORK/archgraphd.sock"
DPID=""
cleanup() {
    if [[ -n "$DPID" ]] && kill -0 "$DPID" 2>/dev/null; then
        kill "$DPID" 2>/dev/null || true
        wait "$DPID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

"$DAEMON" --socket "$SOCK" --jobs 2 --cache-dir "$WORK/cache" &
DPID=$!
for _ in $(seq 1 300); do
    [[ -S "$SOCK" ]] && break
    if ! kill -0 "$DPID" 2>/dev/null; then
        echo "daemon_smoke: FAIL — daemon died before binding its socket" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -S "$SOCK" ]] || { echo "daemon_smoke: FAIL — socket never appeared" >&2; exit 1; }

echo "-- submit (fresh): ${CELLS[*]}"
"$CLIENT" --socket "$SOCK" submit "${CELLS[@]}" > "$WORK/first.jsonl"
echo "-- submit (replay): ${CELLS[*]}"
"$CLIENT" --socket "$SOCK" submit "${CELLS[@]}" > "$WORK/second.jsonl"

python3 - "$BENCH_JSON" "$WORK/first.jsonl" "$WORK/second.jsonl" <<'EOF'
import json, sys

bench_path, first_path, second_path = sys.argv[1], sys.argv[2], sys.argv[3]
bench = json.load(open(bench_path))
bench_cells = {c["name"]: c for c in bench["cells"]}

# Raw "sim" renderings from the bench JSON, for the byte-level check.
bench_raw = {}
current = None
for line in open(bench_path):
    s = line.strip()
    if s.startswith('"name":'):
        current = json.loads("{" + s.rstrip(",") + "}")["name"]
    elif s.startswith('"sim":') and current is not None:
        bench_raw[current] = s.split('"sim": ', 1)[1]

def check(path, expect_cached):
    seen = {}
    for line in open(path):
        ev = json.loads(line)
        t = ev.get("type")
        if t == "error":
            sys.exit(f"daemon_smoke: FAIL — daemon error: {ev}")
        if t == "done":
            if ev["failed"] != 0 or ev["cancelled"] != 0:
                sys.exit(f"daemon_smoke: FAIL — job not fully ok: {ev}")
        if t != "cell":
            continue
        name = ev["name"]
        if "error" in ev:
            sys.exit(f"daemon_smoke: FAIL — cell {name} failed: {ev['error']}")
        if ev["cached"] != expect_cached:
            sys.exit(f"daemon_smoke: FAIL — {name}: cached={ev['cached']}, expected {expect_cached}")
        if name not in bench_cells:
            sys.exit(f"daemon_smoke: FAIL — {name} not in the bench output")
        if ev["sim"] != bench_cells[name]["sim"]:
            sys.exit(
                f"daemon_smoke: FAIL — {name} fingerprint drift: "
                f"daemon {ev['sim']} vs bench {bench_cells[name]['sim']}"
            )
        # Byte identity of the rendered sim object: the daemon line ends
        # "...,\"sim\":{ ... }}" — strip the event's closing brace.
        daemon_sim = line.split('"sim":', 1)[1].strip()
        assert daemon_sim.endswith("}}"), daemon_sim
        daemon_sim = daemon_sim[:-1]
        if daemon_sim != bench_raw[name]:
            sys.exit(
                f"daemon_smoke: FAIL — {name} sim rendering differs byte-wise: "
                f"daemon {daemon_sim!r} vs bench {bench_raw[name]!r}"
            )
        seen[name] = ev["sim"]
    return seen

first = check(first_path, expect_cached=False)
second = check(second_path, expect_cached=True)
if first != second:
    sys.exit(f"daemon_smoke: FAIL — replay changed results: {first} vs {second}")
if not first:
    sys.exit("daemon_smoke: FAIL — no cell results streamed")
print(f"daemon_smoke: {len(first)} cells byte-identical to bench, replay fully cached")
EOF

echo "-- shutdown"
"$CLIENT" --socket "$SOCK" shutdown > /dev/null
if ! wait "$DPID"; then
    echo "daemon_smoke: FAIL — daemon exited nonzero on clean shutdown" >&2
    exit 1
fi
DPID=""
if [[ -e "$SOCK" ]]; then
    echo "daemon_smoke: FAIL — socket file survived shutdown" >&2
    exit 1
fi
echo "daemon_smoke: daemon served, cached, and shut down cleanly"
