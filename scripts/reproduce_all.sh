#!/usr/bin/env bash
# Regenerate the paper's entire evaluation and record it.
#
#   scripts/reproduce_all.sh [smoke|default|full]
#
# Writes tables/series to results/ and prints the summary comparison.
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${1:-default}"
mkdir -p results

echo "== building (release) =="
cargo build --release -p archgraph-bench

run() {
    local name="$1"
    shift
    echo "== $name =="
    "./target/release/$name" "$@" | tee "results/$name.txt"
}

run calibrate "$SCALE"
run fig1 "$SCALE" --csv
run fig2 "$SCALE" --csv
run table1 "$SCALE"
run ratios "$SCALE"
run speedup "$SCALE"

echo
echo "results recorded under results/; see EXPERIMENTS.md for the"
echo "paper-vs-measured interpretation."
