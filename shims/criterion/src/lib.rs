//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this workspace ships
//! a minimal wall-clock timing harness exposing the subset of criterion's
//! API the `crates/bench/benches/*` files use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple (mean and min over `sample_size`
//! timed iterations after one warmup); the regression-tracking role
//! criterion plays upstream is covered by `scripts/bench_check.sh` and the
//! committed `BENCH_archgraph.json` baseline instead.

use std::time::Instant;

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration seconds, drained by the caller.
    last: Vec<f64>,
}

impl Bencher {
    /// Run `f` once as warmup, then `samples` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.last.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.last.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn report(label: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{label:<50} mean {:>12} min {:>12} ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        samples.len()
    );
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.last);
        self
    }

    /// Benchmark a closure that receives `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            last: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.last);
        self
    }

    /// End the group (printing happens eagerly; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: 10,
            last: Vec::new(),
        };
        f(&mut b);
        report(name, &b.last);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
