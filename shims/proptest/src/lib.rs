//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this workspace ships a
//! small deterministic property-testing engine with proptest's names and
//! calling conventions for the subset the test suites use:
//!
//! * strategies: integer/`bool` ranges, `any::<T>()`, tuples, `Just`,
//!   `collection::vec`, `prop_map`, `prop_flat_map`, `prop_shuffle`,
//!   `prop_oneof!`
//! * the `proptest! { #![proptest_config(..)] #[test] fn f(x in s) {..} }`
//!   macro with multiple arguments per test
//! * `prop_assert!` / `prop_assert_eq!`
//!
//! Differences from real proptest, on purpose:
//!
//! * **Deterministic cases.** Case `k` of test `t` is generated from a seed
//!   derived from `(t, k)`, so every run explores the same inputs — there
//!   is no persistence protocol. `*.proptest-regressions` files are kept in
//!   the tree for provenance but are not replayed; known shrunk cases are
//!   promoted to named `#[test]`s instead (see `tests/properties.rs`).
//! * **No shrinking.** On failure the full generated input is printed; the
//!   deterministic seed means the case is reproducible as-is.

use std::fmt::Debug;
use std::ops::Range;

/// Everything test files need, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

// ------------------------------------------------------------------- RNG

/// Deterministic splitmix64 generator used for all case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// -------------------------------------------------------------- Strategy

/// A generator of test inputs. Unlike real proptest there is no value
/// tree: `generate` directly yields a value for one case.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Randomly permute the generated collection.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permute in place.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// [`Strategy::prop_shuffle`] adapter.
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.inner.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// Uniform choice among boxed strategies ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-domain strategy for `T` (`any::<u8>()` etc).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — proptest's canonical whole-domain strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, min..max)` — vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ------------------------------------------------------------ test runner

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drive one property: generate `cfg.cases` inputs and run `body` on each.
/// On panic, reports the deterministic case index and the generated input,
/// then propagates the panic.
pub fn run_property<S, F>(cfg: &ProptestConfig, name: &str, strat: &S, body: F)
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(S::Value),
{
    for case in 0..cfg.cases {
        let mut rng = TestRng::for_case(name, case as u64);
        let value = strat.generate(&mut rng);
        let repr = format!("{value:?}");
        let body = &body;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || body(value)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest-shim: {name} failed at deterministic case {case} with input:\n  {repr}"
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// The `proptest!` block macro: an optional inner
/// `#![proptest_config(..)]` followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] — expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_property(
                &$cfg,
                concat!(module_path!(), "::", stringify!($name)),
                &($($strat,)+),
                |__proptest_values| {
                    let ($($arg,)+) = __proptest_values;
                    $body
                },
            );
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = super::collection::vec((0u32..100, any::<bool>()), 1..50);
        let a = strat.generate(&mut super::TestRng::for_case("det", 7));
        let b = strat.generate(&mut super::TestRng::for_case("det", 7));
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let strat = Just((0u32..200).collect::<Vec<_>>()).prop_shuffle();
        let mut v = strat.generate(&mut super::TestRng::for_case("shuffle", 3));
        v.sort_unstable();
        assert_eq!(v, (0u32..200).collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..50, v in super::collection::vec(0u8..10, 1..9)) {
            prop_assert!(x < 50);
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_hits_every_arm(tag in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&tag));
        }
    }
}
