//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no crates.io access, so this workspace ships
//! a minimal data-parallel iterator layer with the same names and calling
//! conventions as the subset of rayon the codebase uses:
//!
//! * `slice.par_iter()` — `for_each`, `enumerate().for_each`, `any`, `all`
//! * `slice.par_iter_mut()` — `for_each`, `zip(..).enumerate().for_each`
//! * `(0..n).into_par_iter()` — `for_each`, `any`, `all`, `map(..).collect()`
//!
//! Work is split into one contiguous chunk per worker and executed on
//! `std::thread::scope` threads, so closures only need the same `Sync`
//! bounds rayon requires. `map(..).collect()` preserves input order
//! exactly (chunks are concatenated in index order), which the bench
//! harness relies on for bit-identical parallel sweeps.
//!
//! Thread count: `RAYON_NUM_THREADS` if set, else
//! `std::thread::available_parallelism()`. With one worker everything
//! runs inline on the calling thread.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Everything call sites need, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads used by every parallel call.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Run `f` over contiguous sub-ranges of `0..len` on the worker pool.
fn run_chunked<F: Fn(Range<usize>) + Sync>(len: usize, f: F) {
    let nt = current_num_threads().min(len.max(1));
    if nt <= 1 {
        f(0..len);
        return;
    }
    let chunk = len.div_ceil(nt);
    std::thread::scope(|s| {
        let f = &f;
        for t in 1..nt {
            let lo = t * chunk;
            if lo >= len {
                break;
            }
            let hi = ((t + 1) * chunk).min(len);
            s.spawn(move || f(lo..hi));
        }
        f(0..chunk.min(len));
    });
}

/// Run `f` over chunks and concatenate each chunk's output in index order.
fn run_chunked_collect<R: Send, F: Fn(Range<usize>) -> Vec<R> + Sync>(len: usize, f: F) -> Vec<R> {
    let nt = current_num_threads().min(len.max(1));
    if nt <= 1 {
        return f(0..len);
    }
    let chunk = len.div_ceil(nt);
    std::thread::scope(|s| {
        let f = &f;
        let mut handles = Vec::new();
        for t in 1..nt {
            let lo = t * chunk;
            if lo >= len {
                break;
            }
            let hi = ((t + 1) * chunk).min(len);
            handles.push(s.spawn(move || f(lo..hi)));
        }
        let mut out = f(0..chunk.min(len));
        for h in handles {
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// Raw-pointer wrapper so disjoint `&mut` chunks can cross threads.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Element pointer. A method (not field access) so closures capture the
    /// whole wrapper under RFC 2229 disjoint capture, keeping it `Sync`.
    unsafe fn at(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

// ---------------------------------------------------------------- par_iter

/// `.par_iter()` on slices (and anything that derefs to a slice).
pub trait ParallelSlice<T: Sync> {
    /// Parallel shared-reference iterator.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over `&T`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let slice = self.slice;
        run_chunked(slice.len(), |r| {
            for i in r {
                f(&slice[i]);
            }
        });
    }

    /// Pair every element with its index.
    pub fn enumerate(self) -> ParIterEnum<'a, T> {
        ParIterEnum { slice: self.slice }
    }

    /// True iff `f` holds for every element (early-exits cooperatively).
    pub fn all<F: Fn(&'a T) -> bool + Sync>(self, f: F) -> bool {
        let slice = self.slice;
        let failed = AtomicBool::new(false);
        run_chunked(slice.len(), |r| {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            for i in r {
                if !f(&slice[i]) {
                    failed.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        !failed.load(Ordering::Relaxed)
    }

    /// True iff `f` holds for some element (early-exits cooperatively).
    pub fn any<F: Fn(&'a T) -> bool + Sync>(self, f: F) -> bool {
        let slice = self.slice;
        let found = AtomicBool::new(false);
        run_chunked(slice.len(), |r| {
            if found.load(Ordering::Relaxed) {
                return;
            }
            for i in r {
                if f(&slice[i]) {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        found.load(Ordering::Relaxed)
    }
}

/// Enumerated parallel iterator over `(usize, &T)`.
pub struct ParIterEnum<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIterEnum<'a, T> {
    /// Apply `f` to every `(index, element)` pair.
    pub fn for_each<F: Fn((usize, &'a T)) + Sync>(self, f: F) {
        let slice = self.slice;
        run_chunked(slice.len(), |r| {
            for i in r {
                f((i, &slice[i]));
            }
        });
    }
}

// ------------------------------------------------------------ par_iter_mut

/// `.par_iter_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel exclusive-reference iterator.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

/// Parallel iterator over `&mut T`.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Apply `f` to every element.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        let len = self.slice.len();
        let ptr = SendPtr(self.slice.as_mut_ptr());
        run_chunked(len, |r| {
            for i in r {
                // SAFETY: chunks are disjoint sub-ranges of 0..len.
                f(unsafe { &mut *ptr.at(i) });
            }
        });
    }

    /// Lock-step pairing with a second mutable iterator (length = min).
    pub fn zip<U: Send>(self, other: ParIterMut<'a, U>) -> ParZipMut<'a, T, U> {
        ParZipMut {
            a: self.slice,
            b: other.slice,
        }
    }
}

/// Parallel iterator over `(&mut T, &mut U)`.
pub struct ParZipMut<'a, T, U> {
    a: &'a mut [T],
    b: &'a mut [U],
}

impl<'a, T: Send, U: Send> ParZipMut<'a, T, U> {
    /// Pair every element pair with its index.
    pub fn enumerate(self) -> ParZipMutEnum<'a, T, U> {
        ParZipMutEnum {
            a: self.a,
            b: self.b,
        }
    }
}

/// Enumerated variant of [`ParZipMut`].
pub struct ParZipMutEnum<'a, T, U> {
    a: &'a mut [T],
    b: &'a mut [U],
}

impl<'a, T: Send, U: Send> ParZipMutEnum<'a, T, U> {
    /// Apply `f` to every `(index, (&mut a, &mut b))`.
    pub fn for_each<F: Fn((usize, (&mut T, &mut U))) + Sync>(self, f: F) {
        let len = self.a.len().min(self.b.len());
        let pa = SendPtr(self.a.as_mut_ptr());
        let pb = SendPtr(self.b.as_mut_ptr());
        run_chunked(len, |r| {
            for i in r {
                // SAFETY: chunks are disjoint sub-ranges of 0..len.
                unsafe { f((i, (&mut *pa.at(i), &mut *pb.at(i)))) };
            }
        });
    }
}

// ------------------------------------------------------------ par ranges

/// `.into_par_iter()` — provided for `Range<usize>`.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator type.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    fn len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }

    /// Apply `f` to every index.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let start = self.range.start;
        run_chunked(self.len(), |r| {
            for i in r {
                f(start + i);
            }
        });
    }

    /// True iff `f` holds for every index.
    pub fn all<F: Fn(usize) -> bool + Sync>(self, f: F) -> bool {
        let start = self.range.start;
        let failed = AtomicBool::new(false);
        run_chunked(self.len(), |r| {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            for i in r {
                if !f(start + i) {
                    failed.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        !failed.load(Ordering::Relaxed)
    }

    /// True iff `f` holds for some index.
    pub fn any<F: Fn(usize) -> bool + Sync>(self, f: F) -> bool {
        let start = self.range.start;
        let found = AtomicBool::new(false);
        run_chunked(self.len(), |r| {
            if found.load(Ordering::Relaxed) {
                return;
            }
            for i in r {
                if f(start + i) {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        found.load(Ordering::Relaxed)
    }

    /// Order-preserving parallel map.
    pub fn map<R, F: Fn(usize) -> R>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap {
            range: self.range,
            f,
        }
    }
}

/// Mapped parallel range; `collect()` preserves index order.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Collect mapped values in index order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: From<Vec<R>>,
    {
        let start = self.range.start;
        let len = self.range.end.saturating_sub(start);
        let f = &self.f;
        let v = run_chunked_collect(len, |r| r.map(|i| f(start + i)).collect());
        C::from(v)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn for_each_visits_everything_once() {
        let v: Vec<u64> = (0..10_000).collect();
        let sum = AtomicU64::new(0);
        v.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..5_000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out, (0..5_000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn all_and_any_agree_with_sequential() {
        let v: Vec<i32> = (0..1_000).collect();
        assert!(v.par_iter().all(|&x| x < 1_000));
        assert!(!v.par_iter().all(|&x| x < 999));
        assert!(v.par_iter().any(|&x| x == 731));
        assert!(!v.par_iter().any(|&x| x < 0));
        assert!((0..100).into_par_iter().all(|i| i < 100));
        assert!((0..100).into_par_iter().any(|i| i == 99));
    }

    #[test]
    fn zip_enumerate_writes_disjoint_elements() {
        let mut a = vec![0usize; 4_096];
        let mut b = vec![0usize; 4_096];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x = i;
                *y = 2 * i;
            });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i));
        assert!(b.iter().enumerate().all(|(i, &y)| y == 2 * i));
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u8> = Vec::new();
        v.par_iter().for_each(|_| unreachable!());
        let out: Vec<u8> = (0..0).into_par_iter().map(|_| 0u8).collect();
        assert!(out.is_empty());
    }
}
