//! Offline stand-in for [serde](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access. The workspace only uses
//! serde as `#[derive(Serialize, Deserialize)]` markers on parameter
//! structs (no serializer ever runs — JSON output is hand-written), so the
//! shim provides blanket-implemented marker traits and no-op derives.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait; satisfied by every type.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
