//! Offline stand-in for serde's derive macros. The derives expand to
//! nothing: the shim `serde` crate's `Serialize`/`Deserialize` traits are
//! blanket-implemented, so `#[derive(Serialize, Deserialize)]` stays valid
//! without generating code. JSON emitted by this workspace is hand-written
//! (see `archgraph-bench`'s `bench` driver).

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
