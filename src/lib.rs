//! # archgraph
//!
//! A production-quality Rust reproduction of
//!
//! > David A. Bader, Guojing Cong, John Feo.
//! > *On the Architectural Requirements for Efficient Execution of Graph
//! > Algorithms.* ICPP 2005.
//!
//! The paper studies two irregular graph kernels — **list ranking** and
//! **Shiloach–Vishkin connected components** — on two shared-memory
//! architecture classes: cache-based symmetric multiprocessors (Sun E4500)
//! and the latency-tolerant Cray MTA-2 multithreaded architecture. Since
//! neither machine is available, this workspace builds faithful
//! cycle-accounting simulators of both, implements every algorithm the
//! paper describes (plus the baselines it cites), and regenerates every
//! figure and table of the evaluation.
//!
//! This crate is a facade that re-exports the workspace's public API:
//!
//! * [`core`] — cost model `⟨T_M; T_C; B⟩`, machine
//!   parameters, experiment harness, reporting.
//! * [`graph`] — lists, edge lists, CSR, generators,
//!   union-find oracle.
//! * [`smp`](archgraph_smp_sim) — the SMP (Sun E4500-class) simulator.
//! * [`mta`](archgraph_mta_sim) — the Cray MTA-2 simulator.
//! * [`listrank`] — list-ranking algorithms.
//! * [`concomp`] — connected-components algorithms.
//! * [`coloring`] — speculative greedy graph coloring.
//! * [`bfs`] — frontier-based breadth-first search.
//! * [`apps`] — applications built on the primitives:
//!   Euler tours, rooted-tree analytics, minimum spanning forests.
//!
//! ## Quick start
//!
//! ```
//! use archgraph::graph::{gen, unionfind};
//! use archgraph::concomp;
//!
//! // A random graph in the paper's style: n vertices, m unique edges.
//! let g = gen::random_gnm(1 << 12, 1 << 14, 42);
//!
//! // Parallel Shiloach–Vishkin, then check against the sequential oracle.
//! let labels = concomp::sv::shiloach_vishkin(&g);
//! assert!(unionfind::same_partition(
//!     &labels,
//!     &unionfind::connected_components(&g),
//! ));
//! ```

pub use archgraph_apps as apps;
pub use archgraph_bfs as bfs;
pub use archgraph_coloring as coloring;
pub use archgraph_concomp as concomp;
pub use archgraph_core as core;
pub use archgraph_graph as graph;
pub use archgraph_listrank as listrank;
pub use archgraph_mta_sim as mta;
pub use archgraph_smp_sim as smp;
