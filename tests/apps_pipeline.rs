//! End-to-end application pipelines across crates: graph → spanning
//! forest → Euler tour → tree analytics, MSF, and expression contraction,
//! each against sequential oracles.

use archgraph::apps::euler::Ranker;
use archgraph::apps::expr::ExprTree;
use archgraph::apps::msf::{kruskal_weight, minimum_spanning_forest};
use archgraph::apps::{RootedAnalysis, Tree};
use archgraph::concomp::spanning::{is_spanning_forest, spanning_forest};
use archgraph::graph::edgelist::EdgeList;
use archgraph::graph::gen;
use archgraph::graph::rng::Rng;
use archgraph::graph::Node;

#[test]
fn graph_to_rooted_analytics_pipeline() {
    // Connected random graph -> spanning forest -> tree -> analytics.
    let n = 4096usize;
    let g = gen::random_gnm(n, 6 * n, 3); // dense enough to be connected whp
    let forest = spanning_forest(&g);
    assert!(is_spanning_forest(&g, &forest));
    if forest.len() != n - 1 {
        // Disconnected (astronomically unlikely at 6n edges): nothing
        // more to assert here.
        return;
    }
    let tree = Tree::new(EdgeList::from_pairs(n, forest.iter().map(|e| (e.u, e.v))))
        .expect("a full spanning forest of a connected graph is a tree");
    let analysis = RootedAnalysis::compute(&tree, 0, Ranker::HelmanJaja(4), 4);
    let oracle = tree.rooted_oracle(0);
    assert_eq!(analysis.parent, oracle.parent);
    assert_eq!(analysis.depth, oracle.depth);
    assert_eq!(analysis.size, oracle.size);
    assert_eq!(analysis.size[0] as usize, n);
}

#[test]
fn msf_beats_arbitrary_forest_weights() {
    let g = gen::random_gnm(600, 3000, 5);
    let mut rng = Rng::new(6);
    let weights: Vec<u32> = (0..g.m()).map(|_| rng.below(10_000) as u32).collect();
    let msf = minimum_spanning_forest(&g, &weights);
    let msf_weight: u64 = msf.iter().map(|&i| weights[i] as u64).sum();
    assert_eq!(msf_weight, kruskal_weight(&g, &weights));
    // Any other spanning forest (the unweighted SV one) weighs at least
    // as much.
    let other = spanning_forest(&g);
    let lookup: std::collections::HashMap<(Node, Node), u64> = g
        .edges
        .iter()
        .enumerate()
        .map(|(i, e)| ((e.canonical().u, e.canonical().v), weights[i] as u64))
        .collect();
    let other_weight: u64 = other
        .iter()
        .map(|e| lookup[&(e.canonical().u, e.canonical().v)])
        .sum();
    assert!(other_weight >= msf_weight);
}

#[test]
fn expression_contraction_round_trip() {
    for (leaves, seed) in [(100usize, 1u64), (2048, 2)] {
        let t = ExprTree::random(leaves, seed);
        assert_eq!(t.eval_contraction(4), t.eval_sequential());
    }
    let t = ExprTree::caterpillar(1500, 3);
    assert_eq!(t.eval_contraction(4), t.eval_sequential());
}

#[test]
fn rmat_graphs_flow_through_cc_and_msf() {
    // The skewed generator's output works through the whole stack.
    let g =
        archgraph::graph::rmat::rmat(11, 8192, archgraph::graph::rmat::RmatParams::graph500(), 9);
    let labels = archgraph::concomp::shiloach_vishkin(&g);
    let oracle = archgraph::graph::unionfind::connected_components(&g);
    assert!(archgraph::graph::unionfind::same_partition(
        &labels, &oracle
    ));
    let weights: Vec<u32> = (0..g.m() as u32).collect();
    let msf = minimum_spanning_forest(&g, &weights);
    let edges: Vec<_> = msf.iter().map(|&i| g.edges[i]).collect();
    assert!(is_spanning_forest(&g, &edges));
}

#[test]
fn dimacs_io_round_trips_workloads() {
    let g = gen::random_gnm(300, 900, 11);
    let mut buf = Vec::new();
    archgraph::graph::io::write_dimacs(&g, &mut buf).unwrap();
    let back = archgraph::graph::io::read_dimacs(&buf[..]).unwrap();
    assert_eq!(back, g);
    // And the parsed graph still computes correctly.
    assert!(archgraph::graph::unionfind::same_partition(
        &archgraph::concomp::sv_mta_style(&back),
        &archgraph::graph::unionfind::connected_components(&g),
    ));
}
