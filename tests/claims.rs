//! The paper's six headline claims (DESIGN.md C1–C6), asserted as ratio
//! bands on the simulated architectures.
//!
//! To keep these fast enough for `cargo test` we shrink the SMP's cache
//! and TLB geometry by 32× and the problem by the same factor: the
//! *regime* (working set ≫ caches, ≫ TLB reach) is what produces the
//! paper's shapes, and it is scale-invariant. The full-parameter,
//! full-size check is the `calibrate` binary (see EXPERIMENTS.md for its
//! recorded output).

use archgraph::concomp::{sim_mta as cc_mta, sim_smp as cc_smp};
use archgraph::core::machine::{MtaParams, SmpParams};
use archgraph::graph::gen;
use archgraph::graph::list::LinkedList;
use archgraph::graph::rng::Rng;
use archgraph::listrank::{sim_mta as lr_mta, sim_smp as lr_smp};

/// Sun E4500 parameters with cache/TLB geometry shrunk 32× (latencies and
/// clock unchanged), so a 2^16-element list is as far beyond the caches
/// as the paper's 20M-element list was beyond the real ones.
fn e4500_scaled() -> SmpParams {
    let mut p = SmpParams::sun_e4500();
    p.l1_bytes /= 32;
    p.l2_bytes /= 32;
    p.tlb_entries = 8;
    p.page_bytes = 1024;
    p
}

const N: usize = 1 << 16;
const P: usize = 8;
const STREAMS: usize = 100;

fn lists() -> (LinkedList, LinkedList) {
    (
        LinkedList::ordered(N),
        LinkedList::random(N, &mut Rng::new(1)),
    )
}

#[test]
fn c1_both_machines_scale_with_processors() {
    let (_, rnd) = lists();
    let smp = e4500_scaled();
    let mta = MtaParams::mta2();
    let s1 = lr_smp::simulate_hj(&rnd, &smp, 1, 8, 1).seconds;
    let s8 = lr_smp::simulate_hj(&rnd, &smp, 8, 8, 1).seconds;
    let m1 = lr_mta::simulate_walk_ranking(&rnd, &mta, 1, STREAMS, N / 10).seconds;
    let m8 = lr_mta::simulate_walk_ranking(&rnd, &mta, 8, STREAMS, N / 10).seconds;
    let smp_speedup = s1 / s8;
    let mta_speedup = m1 / m8;
    assert!(
        smp_speedup > 3.5,
        "SMP speedup at p=8 should be substantial: {smp_speedup}"
    );
    assert!(
        mta_speedup > 5.0,
        "MTA speedup at p=8 should be near-linear: {mta_speedup}"
    );
}

#[test]
fn c2_smp_ordered_beats_random_by_3_to_4x() {
    let (ord, rnd) = lists();
    let smp = e4500_scaled();
    let t_ord = lr_smp::simulate_hj(&ord, &smp, P, 8, 1).seconds;
    let t_rnd = lr_smp::simulate_hj(&rnd, &smp, P, 8, 1).seconds;
    let ratio = t_rnd / t_ord;
    assert!(
        (2.0..8.0).contains(&ratio),
        "SMP Random/Ordered ratio {ratio} outside the paper band (3-4x, we accept 2-8)"
    );
}

#[test]
fn c3_mta_is_layout_insensitive() {
    let (ord, rnd) = lists();
    let mta = MtaParams::mta2();
    let t_ord = lr_mta::simulate_walk_ranking(&ord, &mta, P, STREAMS, N / 10).seconds;
    let t_rnd = lr_mta::simulate_walk_ranking(&rnd, &mta, P, STREAMS, N / 10).seconds;
    let ratio = t_rnd / t_ord;
    assert!(
        (0.9..1.15).contains(&ratio),
        "MTA Random/Ordered ratio {ratio} should be ~1"
    );
}

#[test]
fn c4_mta_beats_smp_more_on_random_than_ordered() {
    let (ord, rnd) = lists();
    let smp = e4500_scaled();
    let mta = MtaParams::mta2();
    let r_ord = lr_smp::simulate_hj(&ord, &smp, P, 8, 1).seconds
        / lr_mta::simulate_walk_ranking(&ord, &mta, P, STREAMS, N / 10).seconds;
    let r_rnd = lr_smp::simulate_hj(&rnd, &smp, P, 8, 1).seconds
        / lr_mta::simulate_walk_ranking(&rnd, &mta, P, STREAMS, N / 10).seconds;
    assert!(
        r_ord > 3.0,
        "MTA should win clearly even on ordered lists: {r_ord}"
    );
    assert!(
        r_rnd > 15.0,
        "MTA should win by tens of x on random lists: {r_rnd}"
    );
    assert!(
        r_rnd > 2.0 * r_ord,
        "the random-list advantage must exceed the ordered one: {r_rnd} vs {r_ord}"
    );
}

#[test]
fn c5_mta_wins_connected_components_by_about_5x() {
    // Unlike the list kernels, CC's D-array working set interacts with
    // the TLB reach non-linearly, so shrunken geometry distorts the
    // ratio; use the real E4500 parameters at the calibration scale.
    let n = 1 << 14;
    let g = gen::random_gnm(n, 12 * n, 2);
    let smp = SmpParams::sun_e4500();
    let mta = MtaParams::mta2();
    let t_smp = cc_smp::simulate_sv(&g, &smp, P).seconds;
    let t_mta = cc_mta::simulate_sv_mta(&g, &mta, P, STREAMS).seconds;
    let ratio = t_smp / t_mta;
    assert!(
        (2.5..12.0).contains(&ratio),
        "MTA/SMP CC ratio {ratio} outside the accepted band around the paper's 5-6x"
    );
}

#[test]
fn c6_mta_utilization_is_high_and_falls_with_p() {
    let (_, rnd) = lists();
    let mta = MtaParams::mta2();
    let u1 = lr_mta::simulate_walk_ranking(&rnd, &mta, 1, STREAMS, N / 10)
        .report
        .utilization;
    let u8 = lr_mta::simulate_walk_ranking(&rnd, &mta, 8, STREAMS, N / 10)
        .report
        .utilization;
    assert!(u1 > 0.8, "p=1 utilization should be near full: {u1}");
    assert!(u8 > 0.5, "p=8 utilization should stay high: {u8}");
    assert!(
        u8 <= u1 + 0.02,
        "utilization should not rise with p: {u1} -> {u8}"
    );

    let n = 1 << 12;
    let g = gen::random_gnm(n, 20 * n, 3);
    let ucc = cc_mta::simulate_sv_mta(&g, &mta, 4, STREAMS)
        .report
        .utilization;
    assert!(ucc > 0.6, "CC utilization should be high: {ucc}");
}
