//! Cross-crate agreement: every implementation of each kernel — native
//! parallel, SMP-simulated, MTA-simulated, analytic — must agree with the
//! sequential oracle (and, for the analytic model, with the simulators'
//! scaling directions).

use archgraph::concomp::{sim_mta as cc_mta, sim_smp as cc_smp};
use archgraph::core::cost::formulas;
use archgraph::core::machine::{MtaParams, SmpParams};
use archgraph::core::predict;
use archgraph::graph::gen;
use archgraph::graph::list::LinkedList;
use archgraph::graph::rng::Rng;
use archgraph::graph::unionfind::{connected_components, same_partition};
use archgraph::listrank::{
    helman_jaja, mta_style_rank, sequential_rank, sim_mta as lr_mta, sim_smp as lr_smp, HjConfig,
    MtaStyleConfig,
};

#[test]
fn all_five_list_rankers_agree() {
    let mut rng = Rng::new(71);
    for n in [1usize, 13, 500, 4096] {
        let list = LinkedList::random(n, &mut rng);
        let oracle = sequential_rank(&list);
        assert_eq!(list.rank_oracle(), oracle, "n = {n}");
        assert_eq!(
            helman_jaja(&list, &HjConfig::with_threads(3)),
            oracle,
            "HJ, n = {n}"
        );
        assert_eq!(
            mta_style_rank(&list, &MtaStyleConfig::for_list(n, 2)),
            oracle,
            "walks, n = {n}"
        );
        let sim_s = lr_smp::simulate_hj(&list, &SmpParams::tiny_for_tests(), 2, 8, 1);
        assert_eq!(sim_s.rank, oracle, "SMP sim, n = {n}");
        if n >= 1 {
            let sim_m = lr_mta::simulate_walk_ranking(
                &list,
                &MtaParams::tiny_for_tests(),
                2,
                8,
                (n / 10).max(1),
            );
            assert_eq!(sim_m.rank, oracle, "MTA sim, n = {n}");
        }
    }
}

#[test]
fn all_cc_implementations_agree() {
    for (n, m, seed) in [(64usize, 96usize, 1u64), (512, 2048, 2), (1000, 1500, 3)] {
        let g = gen::random_gnm(n, m, seed);
        let oracle = connected_components(&g);
        let native2 = archgraph::concomp::shiloach_vishkin(&g);
        let native3 = archgraph::concomp::sv_mta_style(&g);
        let sim_s = cc_smp::simulate_sv(&g, &SmpParams::tiny_for_tests(), 2);
        let sim_m = cc_mta::simulate_sv_mta(&g, &MtaParams::tiny_for_tests(), 2, 8);
        for (name, labels) in [
            ("native Alg.2", &native2),
            ("native Alg.3", &native3),
            ("SMP sim", &sim_s.labels),
            ("MTA sim", &sim_m.labels),
        ] {
            assert!(
                same_partition(labels, &oracle),
                "{name} disagrees at n={n} m={m}"
            );
        }
    }
}

#[test]
fn analytic_model_tracks_simulator_scaling() {
    // The closed-form predictions and the simulator must agree on
    // *directions*: more processors -> less time; more data -> more time.
    let params = SmpParams::sun_e4500();
    let n = 1 << 15;
    let list = LinkedList::random(n, &mut Rng::new(5));
    let sim1 = lr_smp::simulate_hj(&list, &params, 1, 8, 1).seconds;
    let sim8 = lr_smp::simulate_hj(&list, &params, 8, 8, 1).seconds;
    let pred1 = predict::smp_seconds(&formulas::hj_list_ranking(n, 1), &params, 1);
    let pred8 = predict::smp_seconds(&formulas::hj_list_ranking(n, 8), &params, 8);
    assert!(sim1 > sim8 && pred1 > pred8, "both must speed up with p");
    // Within an order of magnitude of each other at p = 1 (the analytic
    // model has no TLB/instruction-budget terms).
    let ratio = sim1 / pred1;
    assert!(
        (0.1..60.0).contains(&ratio),
        "simulator and closed form wildly disagree: {ratio}"
    );
}

#[test]
fn mta_simulator_matches_saturation_model() {
    // The analytic saturation threshold (streams_to_saturate) should
    // separate starved from saturated regimes in the event simulator.
    let params = MtaParams::mta2();
    let n = 1 << 13;
    let list = LinkedList::ordered(n);
    let starved = lr_mta::simulate_walk_ranking(&list, &params, 1, 2, n / 10);
    let saturated = lr_mta::simulate_walk_ranking(&list, &params, 1, 100, n / 10);
    assert!(
        starved.report.utilization < 0.5,
        "2 streams must starve: {}",
        starved.report.utilization
    );
    assert!(
        saturated.report.utilization > 0.8,
        "100 streams must nearly saturate: {}",
        saturated.report.utilization
    );
    assert!(starved.seconds > 2.0 * saturated.seconds);
}

#[test]
fn simulated_and_native_iteration_counts_are_comparable() {
    // SV grafting rounds are a property of the algorithm + input, not the
    // architecture: the SMP simulation, MTA simulation and deterministic
    // native variant should take similar iteration counts.
    let g = gen::random_gnm(2048, 8192, 9);
    let (_, native_iters) = archgraph::concomp::sv_mta::sv_mta_style_iters(&g);
    let sim_s = cc_smp::simulate_sv(&g, &SmpParams::tiny_for_tests(), 2);
    let sim_m = cc_mta::simulate_sv_mta(&g, &MtaParams::tiny_for_tests(), 2, 8);
    for (name, iters) in [("SMP sim", sim_s.iterations), ("MTA sim", sim_m.iterations)] {
        assert!(
            iters <= native_iters + 3 && iters + 3 >= native_iters.min(iters + 3),
            "{name} iterations {iters} far from native {native_iters}"
        );
    }
}
