//! Reproducibility: everything keyed by a seed must be bit-identical
//! across runs — workloads, simulated times, and figure series.

use archgraph_bench::workloads::{make_graph, make_list, ListKind};
use archgraph_bench::{fig1, fig2, table1, Scale};
use archgraph_core::machine::{MtaParams, SmpParams};
use archgraph_listrank::{sim_mta, sim_smp};

#[test]
fn workloads_are_seed_deterministic() {
    assert_eq!(
        make_list(ListKind::Random, 5000, 9),
        make_list(ListKind::Random, 5000, 9)
    );
    assert_ne!(
        make_list(ListKind::Random, 5000, 9),
        make_list(ListKind::Random, 5000, 10)
    );
    assert_eq!(make_graph(500, 2000, 3), make_graph(500, 2000, 3));
}

#[test]
fn simulated_times_are_deterministic() {
    let list = make_list(ListKind::Random, 4096, 4);
    let smp = SmpParams::sun_e4500();
    let mta = MtaParams::mta2();
    let a = sim_smp::simulate_hj(&list, &smp, 4, 8, 4);
    let b = sim_smp::simulate_hj(&list, &smp, 4, 8, 4);
    assert_eq!(a.seconds, b.seconds);
    assert_eq!(a.stats, b.stats);
    let a = sim_mta::simulate_walk_ranking(&list, &mta, 2, 16, 400);
    let b = sim_mta::simulate_walk_ranking(&list, &mta, 2, 16, 400);
    assert_eq!(a.report.cycles, b.report.cycles);
    assert_eq!(a.report.issued, b.report.issued);
    assert_eq!(a.rank, b.rank);
}

#[test]
fn figure_series_are_deterministic() {
    let a1 = fig1::smp_series(Scale::Smoke, false);
    let b1 = fig1::smp_series(Scale::Smoke, false);
    assert_eq!(a1, b1);
    let a2 = fig2::mta_series(Scale::Smoke, false);
    let b2 = fig2::mta_series(Scale::Smoke, false);
    assert_eq!(a2, b2);
    let at = table1::utilization_table(Scale::Smoke, false);
    let bt = table1::utilization_table(Scale::Smoke, false);
    assert_eq!(at, bt);
}

#[test]
fn native_racy_algorithms_still_give_stable_partitions() {
    // The native SV uses relaxed atomics: *labels* may differ run to run,
    // but the partition never does.
    let g = make_graph(2000, 8000, 7);
    let a = archgraph::concomp::shiloach_vishkin(&g);
    let b = archgraph::concomp::shiloach_vishkin(&g);
    assert!(archgraph::graph::unionfind::same_partition(&a, &b));
}
