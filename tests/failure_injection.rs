//! Failure injection and degenerate inputs: corrupted lists must be
//! *detected*, and every algorithm must handle empty/singleton/duplicate
//! inputs without panicking.

use archgraph::concomp::{shiloach_vishkin, sv_mta_style};
use archgraph::core::machine::{MtaParams, SmpParams};
use archgraph::graph::edgelist::EdgeList;
use archgraph::graph::gen;
use archgraph::graph::list::{LinkedList, ListError};
use archgraph::graph::rng::Rng;
use archgraph::graph::unionfind::{connected_components, same_partition};
use archgraph::listrank::{helman_jaja, sequential_rank, HjConfig};

#[test]
fn validator_catches_injected_cycles() {
    let mut rng = Rng::new(81);
    let mut list = LinkedList::random(100, &mut rng);
    // Corrupt: point some node's successor back at the head, closing a
    // cycle and orphaning the tail segment.
    let victim = list.order()[50] as usize;
    list.next[victim] = list.head;
    assert!(list.validate().is_err(), "cycle must be detected");
}

#[test]
fn validator_catches_truncation() {
    let mut list = LinkedList::ordered(50);
    list.next[20] = 50; // premature terminator: slots 21.. unreachable
    assert!(matches!(
        list.validate(),
        Err(ListError::DuplicateSuccessor { .. }) | Err(ListError::BrokenChain { .. })
    ));
}

#[test]
fn validator_catches_out_of_range_pointers() {
    let mut list = LinkedList::ordered(10);
    list.next[3] = 99;
    assert!(matches!(
        list.validate(),
        Err(ListError::SuccessorOutOfRange { slot: 3, next: 99 })
    ));
}

#[test]
fn rankers_handle_boundary_sizes() {
    for n in [0usize, 1, 2, 3] {
        let list = LinkedList::ordered(n);
        assert_eq!(sequential_rank(&list).len(), n);
        assert_eq!(
            helman_jaja(&list, &HjConfig::with_threads(4)),
            sequential_rank(&list)
        );
    }
}

#[test]
fn cc_handles_pathological_graphs() {
    let cases: Vec<EdgeList> = vec![
        EdgeList::empty(0),
        EdgeList::empty(1),
        EdgeList::from_pairs(1, [(0, 0)]), // single self loop
        EdgeList::from_pairs(2, vec![(0, 1); 50]), // heavy multi-edge
        EdgeList::from_pairs(3, [(2, 2), (2, 2), (0, 0)]), // loops only
        gen::with_isolated(&gen::complete(5), 100), // mostly isolated
    ];
    for g in &cases {
        let oracle = connected_components(g);
        assert!(same_partition(&shiloach_vishkin(g), &oracle));
        assert!(same_partition(&sv_mta_style(g), &oracle));
    }
}

#[test]
fn simulators_reject_invalid_configurations() {
    use std::panic::catch_unwind;
    assert!(catch_unwind(|| {
        archgraph::smp::machine::SmpMachine::new(SmpParams::sun_e4500(), 0)
    })
    .is_err());
    assert!(catch_unwind(|| {
        archgraph::smp::machine::SmpMachine::new(SmpParams::sun_e4500(), 99)
    })
    .is_err());
    assert!(
        catch_unwind(|| { archgraph::mta::machine::MtaMachine::new(MtaParams::mta2(), 0) })
            .is_err()
    );
}

#[test]
fn gnm_generator_edge_cases() {
    assert_eq!(gen::random_gnm(0, 0, 1).m(), 0);
    assert_eq!(gen::random_gnm(1, 0, 1).m(), 0);
    assert_eq!(gen::random_gnm(2, 1, 1).m(), 1);
    // Maximum density.
    let g = gen::random_gnm(8, gen::max_edges(8), 1);
    assert_eq!(g.m(), 28);
    assert!(g.is_simple());
}

#[test]
fn oversized_walk_and_sublist_requests_are_clamped() {
    let mut rng = Rng::new(83);
    let list = LinkedList::random(20, &mut rng);
    // More walks/sublists than elements must degrade gracefully.
    let cfg = archgraph::listrank::MtaStyleConfig {
        walks: 10_000,
        threads: 4,
    };
    assert_eq!(
        archgraph::listrank::mta_style_rank(&list, &cfg),
        list.rank_oracle()
    );
    let hj = HjConfig {
        threads: 4,
        sublists_per_thread: 10_000,
        seed: 0,
    };
    assert_eq!(helman_jaja(&list, &hj), list.rank_oracle());
}
