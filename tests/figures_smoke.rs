//! Smoke runs of every figure/table harness at the smallest scale:
//! each must produce full series with positive, size-monotone times.

use archgraph_bench::{fig1, fig2, table1, Scale};

#[test]
fn fig1_regenerates_both_panels() {
    let mta = fig1::mta_series(Scale::Smoke, false);
    let smp = fig1::smp_series(Scale::Smoke, false);
    assert_eq!(mta.len(), 4);
    assert_eq!(smp.len(), 4);
    for s in mta.iter().chain(smp.iter()) {
        assert!(!s.points.is_empty(), "{} empty", s.label);
        assert!(s.points.iter().all(|p| p.seconds > 0.0));
        // Monotone in n within each series.
        for w in s.points.windows(2) {
            assert!(
                w[1].seconds > w[0].seconds * 0.8,
                "{}: time should grow with n",
                s.label
            );
        }
    }
}

#[test]
fn fig2_regenerates_both_panels() {
    let mta = fig2::mta_series(Scale::Smoke, false);
    let smp = fig2::smp_series(Scale::Smoke, false);
    assert_eq!(mta.len(), 2);
    assert_eq!(smp.len(), 2);
    for s in smp.iter() {
        let first = s.points.first().unwrap().seconds;
        let last = s.points.last().unwrap().seconds;
        assert!(last > first, "{}: denser graphs take longer", s.label);
    }
    for s in mta.iter() {
        assert!(s.points.iter().all(|p| p.seconds > 0.0));
    }
}

#[test]
fn table1_regenerates_all_rows() {
    let rows = table1::utilization_table(Scale::Smoke, false);
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(!r.utilization.is_empty());
        for &(p, u) in &r.utilization {
            assert!(u > 0.0 && u <= 1.0, "{} p={p}: {u}", r.label);
        }
    }
}

#[test]
fn smp_figures_dominate_mta_figures() {
    // Even at smoke scale the SMP panels should sit above the MTA panels
    // at matching points (the paper's cross-panel comparison).
    let mta = fig1::mta_series(Scale::Smoke, false);
    let smp = fig1::smp_series(Scale::Smoke, false);
    for kind in ["Ordered", "Random"] {
        for p in [1usize, 2] {
            let m = mta
                .iter()
                .find(|s| s.label == format!("MTA {kind} p={p}"))
                .unwrap();
            let s = smp
                .iter()
                .find(|s| s.label == format!("SMP {kind} p={p}"))
                .unwrap();
            for pt in &m.points {
                let smp_t = s.at(pt.n, pt.p).unwrap();
                assert!(
                    smp_t > pt.seconds,
                    "SMP should be slower at {kind} n={} p={}",
                    pt.n,
                    pt.p
                );
            }
        }
    }
}
