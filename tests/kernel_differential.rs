//! Engine-differential sweep for the ladder kernels: speculative
//! coloring and frontier BFS must be **bit-identical** on every MTA
//! engine (SingleStep, Trace, Compiled, Partitioned) and, for the
//! partitioned engine, at every worker count `W ∈ {1, 2, 4, 8}` — same
//! outputs (colors / levels), same round and level counts, and the same
//! full [`RunReport`] (cycles, issued, op mix, memory counters).
//!
//! This is the kernel-level echo of the ISA-level differential suite in
//! `crates/mta-sim/tests/trace_differential.rs`: the ISA suite proves the
//! engines agree on arbitrary programs; this one proves the *kernels we
//! actually benchmark* exercise no path that breaks the contract — the
//! bench baseline's per-engine fingerprint identity is a consequence.

use proptest::prelude::*;

use archgraph::bfs::sim_mta::{try_simulate_bfs_mta_scheduled, BfsSchedule};
use archgraph::coloring::seq::validate_coloring;
use archgraph::coloring::sim_mta::simulate_coloring_mta;
use archgraph::core::machine::MtaParams;
use archgraph::graph::bfs::bfs_levels;
use archgraph::graph::csr::Csr;
use archgraph::graph::edgelist::EdgeList;
use archgraph::graph::gen;
use archgraph::mta::machine::{with_engine, with_workers, MtaEngine};

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Engines compared against the single-step oracle (the partitioned
/// engine is additionally swept across explicit worker counts).
const FAST_ENGINES: [MtaEngine; 3] = [
    MtaEngine::Trace,
    MtaEngine::Compiled,
    MtaEngine::Partitioned,
];

fn assert_coloring_engine_invariant(g: &EdgeList, p: usize, streams: usize) {
    let params = MtaParams::tiny_for_tests();
    let run = |eng: MtaEngine| with_engine(eng, || simulate_coloring_mta(g, &params, p, streams));
    let oracle = run(MtaEngine::SingleStep);
    validate_coloring(&Csr::from_edge_list(g), &oracle.colors).expect("oracle colors proper");
    for eng in FAST_ENGINES {
        let r = run(eng);
        assert_eq!(r.colors, oracle.colors, "{eng:?} colors diverged");
        assert_eq!(r.rounds, oracle.rounds, "{eng:?} rounds diverged");
        assert_eq!(r.report, oracle.report, "{eng:?} report diverged");
    }
    for w in WORKER_SWEEP {
        let r = with_workers(w, || run(MtaEngine::Partitioned));
        assert_eq!(r.colors, oracle.colors, "Partitioned W={w} colors diverged");
        assert_eq!(r.rounds, oracle.rounds, "Partitioned W={w} rounds diverged");
        assert_eq!(r.report, oracle.report, "Partitioned W={w} report diverged");
    }
}

fn assert_bfs_engine_invariant(g: &EdgeList, src: u32, p: usize, streams: usize) {
    let params = MtaParams::tiny_for_tests();
    let run = |eng: MtaEngine, sched: BfsSchedule| {
        with_engine(eng, || {
            try_simulate_bfs_mta_scheduled(g, src, &params, p, streams, sched)
                .expect("clean BFS run")
        })
    };
    for sched in [BfsSchedule::Dynamic, BfsSchedule::Block] {
        let oracle = run(MtaEngine::SingleStep, sched);
        assert_eq!(
            oracle.levels,
            bfs_levels(&Csr::from_edge_list(g), src),
            "oracle levels wrong under {sched:?}"
        );
        for eng in FAST_ENGINES {
            let r = run(eng, sched);
            assert_eq!(r.levels, oracle.levels, "{eng:?}/{sched:?} levels diverged");
            assert_eq!(
                r.level_count, oracle.level_count,
                "{eng:?}/{sched:?} level count diverged"
            );
            assert_eq!(r.report, oracle.report, "{eng:?}/{sched:?} report diverged");
        }
        for w in WORKER_SWEEP {
            let r = with_workers(w, || run(MtaEngine::Partitioned, sched));
            assert_eq!(
                r.levels, oracle.levels,
                "Partitioned W={w}/{sched:?} levels diverged"
            );
            assert_eq!(
                r.report, oracle.report,
                "Partitioned W={w}/{sched:?} report diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random G(n, m) graphs across machine shapes: coloring is
    /// bit-identical on every engine and worker count.
    #[test]
    fn coloring_is_engine_invariant_on_random_graphs(
        n in 16usize..80,
        density in 0usize..4,
        seed in 0u64..1000,
        shape in 0usize..3,
    ) {
        let m = n * density / 2;
        let g = gen::random_gnm(n, m, seed);
        let (p, streams) = [(1, 4), (2, 3), (2, 8)][shape];
        assert_coloring_engine_invariant(&g, p, streams);
    }

    /// Random G(n, m) graphs across machine shapes: BFS is bit-identical
    /// on every engine and worker count, under both frontier schedules.
    #[test]
    fn bfs_is_engine_invariant_on_random_graphs(
        n in 16usize..80,
        density in 0usize..4,
        seed in 0u64..1000,
        shape in 0usize..3,
    ) {
        let m = n * density / 2;
        let g = gen::random_gnm(n, m, seed);
        let (p, streams) = [(1, 4), (2, 3), (2, 8)][shape];
        assert_bfs_engine_invariant(&g, (seed % n as u64) as u32, p, streams);
    }
}

/// Structured graphs hit the degenerate schedules (empty rows, one huge
/// row, long dependence chains) that random G(n, m) rarely produces.
#[test]
fn structured_graphs_are_engine_invariant() {
    for g in [
        gen::path(60),
        gen::star(48),
        gen::complete(10),
        gen::mesh2d(7, 7),
        gen::with_isolated(&gen::path(20), 6),
        EdgeList::empty(24),
    ] {
        assert_coloring_engine_invariant(&g, 2, 5);
        assert_bfs_engine_invariant(&g, 0, 2, 5);
    }
}

/// The exact bench-cell shape (scaled down): the per-engine fingerprint
/// identity that `BENCH_archgraph.json` pins is reproduced here as a
/// standing regression, including the worker sweep the baseline cannot
/// encode.
#[test]
fn bench_cell_shape_is_engine_invariant() {
    let g = archgraph_bench::workloads::make_graph(256, 640, archgraph_bench::kernels::GRAPH_SEED);
    assert_coloring_engine_invariant(&g, 4, 8);
    assert_bfs_engine_invariant(&g, 0, 4, 8);
}
