//! Property-based cross-crate tests: arbitrary inputs, every
//! implementation against its oracle.

use proptest::prelude::*;

use archgraph::concomp::awerbuch_shiloach::awerbuch_shiloach;
use archgraph::concomp::hybrid::{hybrid_components, HybridConfig};
use archgraph::concomp::random_mating::random_mating;
use archgraph::concomp::seq::bfs_components;
use archgraph::concomp::sv_spmd::sv_spmd;
use archgraph::concomp::{shiloach_vishkin, sv_mta_style};
use archgraph::graph::edgelist::EdgeList;
use archgraph::graph::list::LinkedList;
use archgraph::graph::unionfind::{connected_components, same_partition};
use archgraph::graph::Node;
use archgraph::listrank::prefix::{par_prefix, seq_prefix};
use archgraph::listrank::{helman_jaja, mta_style_rank, sequential_rank, HjConfig, MtaStyleConfig};

/// Arbitrary permutation of 0..n encoded as a shuffled index vector.
fn permutation(max_n: usize) -> impl Strategy<Value = Vec<Node>> {
    (1..max_n).prop_flat_map(|n| Just((0..n as Node).collect::<Vec<_>>()).prop_shuffle())
}

/// Arbitrary small multigraph: vertex count + edge pairs (loops and
/// duplicates allowed — the algorithms must tolerate them).
fn multigraph(max_n: usize, max_m: usize) -> impl Strategy<Value = EdgeList> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as Node, 0..n as Node), 0..max_m)
            .prop_map(move |pairs| EdgeList::from_pairs(n, pairs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ranking_agrees_on_arbitrary_permutations(perm in permutation(600)) {
        let list = LinkedList::from_permutation(&perm);
        list.validate().unwrap();
        let oracle = list.rank_oracle();
        prop_assert_eq!(&sequential_rank(&list), &oracle);
        prop_assert_eq!(&helman_jaja(&list, &HjConfig::with_threads(3)), &oracle);
        let cfg = MtaStyleConfig { walks: (list.len() / 7).max(1), threads: 2 };
        prop_assert_eq!(&mta_style_rank(&list, &cfg), &oracle);
    }

    #[test]
    fn compaction_ranks_arbitrary_permutations(perm in permutation(500)) {
        use archgraph::listrank::compact::{rank_by_compaction, rank_by_recursive_compaction};
        let list = LinkedList::from_permutation(&perm);
        let oracle = list.rank_oracle();
        let walks = (list.len() / 5).max(1);
        prop_assert_eq!(&rank_by_compaction(&list, walks, 3), &oracle);
        prop_assert_eq!(&rank_by_recursive_compaction(&list, 4, 16, 2), &oracle);
    }

    #[test]
    fn wyllie_ranks_arbitrary_permutations(perm in permutation(500)) {
        use archgraph::listrank::wyllie::wyllie_rank;
        let list = LinkedList::from_permutation(&perm);
        prop_assert_eq!(wyllie_rank(&list), list.rank_oracle());
    }

    #[test]
    fn head_identity_holds_for_any_permutation(perm in permutation(500)) {
        let list = LinkedList::from_permutation(&perm);
        prop_assert_eq!(list.find_head(), list.head);
    }

    #[test]
    fn prefix_sum_equals_rank_plus_one(perm in permutation(400)) {
        let list = LinkedList::from_permutation(&perm);
        let ones = vec![1u64; list.len()];
        let pre = par_prefix(&list, &ones, |a, b| a + b, 3, 9);
        let rank = list.rank_oracle();
        for slot in 0..list.len() {
            prop_assert_eq!(pre[slot], rank[slot] as u64 + 1);
        }
    }

    #[test]
    fn prefix_respects_operator_order(perm in permutation(300)) {
        // Affine composition over Z_97: associative, non-commutative.
        let list = LinkedList::from_permutation(&perm);
        let vals: Vec<(i64, i64)> = (0..list.len())
            .map(|i| (((i * 13) % 96 + 1) as i64, ((i * 29) % 97) as i64))
            .collect();
        let op = |x: (i64, i64), y: (i64, i64)| {
            ((x.0 * y.0).rem_euclid(97), (x.1 * y.0 + y.1).rem_euclid(97))
        };
        prop_assert_eq!(
            par_prefix(&list, &vals, op, 4, 2),
            seq_prefix(&list, &vals, op)
        );
    }

    #[test]
    fn all_cc_algorithms_match_dsu_on_multigraphs(g in multigraph(120, 300)) {
        let oracle = connected_components(&g);
        prop_assert!(same_partition(&shiloach_vishkin(&g), &oracle), "SV Alg.2");
        prop_assert!(same_partition(&sv_mta_style(&g), &oracle), "SV Alg.3");
        prop_assert!(same_partition(&sv_spmd(&g, 3), &oracle), "SV SPMD");
        prop_assert!(same_partition(&awerbuch_shiloach(&g), &oracle), "AS");
        prop_assert!(same_partition(&random_mating(&g, 5), &oracle), "mating");
        prop_assert!(
            same_partition(&hybrid_components(&g, &HybridConfig::default()), &oracle),
            "hybrid"
        );
        prop_assert!(same_partition(&bfs_components(&g), &oracle), "BFS");
    }

    #[test]
    fn sv_outputs_rooted_stars(g in multigraph(100, 200)) {
        for labels in [shiloach_vishkin(&g), sv_mta_style(&g)] {
            for &p in &labels {
                prop_assert_eq!(labels[p as usize], p);
            }
        }
    }

    #[test]
    fn dedup_never_changes_connectivity(g in multigraph(80, 250)) {
        let before = connected_components(&g);
        let mut d = g.clone();
        d.dedup();
        let after = connected_components(&d);
        prop_assert!(same_partition(&before, &after));
        prop_assert!(d.is_simple());
    }
}

/// The shrunk counterexample proptest once found for
/// `all_cc_algorithms_match_dsu_on_multigraphs` (84 nodes, 120 edges; see
/// `properties.proptest-regressions`), pinned as a named test so it is
/// exercised on every run even if the regressions file is wiped.
#[test]
fn cc_regression_84_nodes_120_edges() {
    let pairs: Vec<(Node, Node)> = vec![
        (62, 82),
        (50, 12),
        (70, 49),
        (36, 64),
        (83, 22),
        (49, 19),
        (58, 49),
        (63, 37),
        (81, 9),
        (21, 49),
        (28, 50),
        (45, 61),
        (33, 28),
        (58, 53),
        (61, 53),
        (64, 78),
        (30, 47),
        (13, 56),
        (27, 33),
        (30, 73),
        (42, 59),
        (66, 3),
        (83, 53),
        (39, 5),
        (54, 23),
        (65, 18),
        (57, 17),
        (71, 77),
        (77, 46),
        (51, 74),
        (68, 72),
        (50, 61),
        (1, 63),
        (1, 26),
        (48, 5),
        (22, 29),
        (59, 2),
        (67, 3),
        (83, 24),
        (0, 45),
        (76, 66),
        (66, 70),
        (44, 55),
        (62, 67),
        (14, 60),
        (83, 81),
        (35, 75),
        (7, 39),
        (23, 28),
        (24, 11),
        (8, 71),
        (45, 6),
        (21, 19),
        (64, 66),
        (82, 0),
        (3, 74),
        (13, 40),
        (82, 62),
        (70, 45),
        (49, 22),
        (56, 46),
        (10, 22),
        (30, 50),
        (29, 48),
        (50, 0),
        (22, 82),
        (36, 1),
        (1, 80),
        (54, 52),
        (74, 32),
        (76, 19),
        (56, 12),
        (6, 43),
        (78, 82),
        (45, 3),
        (59, 16),
        (5, 29),
        (5, 78),
        (11, 54),
        (81, 27),
        (21, 11),
        (63, 4),
        (23, 10),
        (45, 60),
        (67, 51),
        (74, 81),
        (9, 17),
        (36, 6),
        (8, 23),
        (60, 54),
        (35, 78),
        (77, 17),
        (17, 52),
        (7, 79),
        (22, 67),
        (1, 46),
        (47, 58),
        (81, 39),
        (2, 83),
        (24, 33),
        (47, 26),
        (11, 53),
        (51, 0),
        (66, 1),
        (8, 71),
        (40, 19),
        (41, 17),
        (4, 21),
        (37, 50),
        (29, 53),
        (18, 11),
        (11, 36),
        (83, 4),
        (59, 10),
        (51, 23),
        (60, 29),
        (13, 14),
        (64, 48),
        (68, 51),
        (54, 14),
    ];
    let g = EdgeList::from_pairs(84, pairs);
    let oracle = connected_components(&g);
    assert!(same_partition(&shiloach_vishkin(&g), &oracle), "SV Alg.2");
    assert!(same_partition(&sv_mta_style(&g), &oracle), "SV Alg.3");
    assert!(same_partition(&sv_spmd(&g, 3), &oracle), "SV SPMD");
    assert!(same_partition(&awerbuch_shiloach(&g), &oracle), "AS");
    assert!(same_partition(&random_mating(&g, 5), &oracle), "mating");
    assert!(
        same_partition(&hybrid_components(&g, &HybridConfig::default()), &oracle),
        "hybrid"
    );
    assert!(same_partition(&bfs_components(&g), &oracle), "BFS");
}
