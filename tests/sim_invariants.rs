//! Cross-cutting simulator invariants and paper-adjacent structure
//! checks that span crates.

use archgraph::concomp::sim_smp::simulate_sv;
use archgraph::core::machine::{MtaParams, SmpParams};
use archgraph::graph::gen;
use archgraph::graph::list::LinkedList;
use archgraph::graph::rng::Rng;
use archgraph::listrank::{sim_mta, sim_smp};

#[test]
fn mta_work_scales_linearly_with_list_length() {
    // The walk algorithm is O(n): doubling n should roughly double the
    // issued instruction count (within the O(W log W) summary overhead).
    let params = MtaParams::tiny_for_tests();
    let small = LinkedList::ordered(2000);
    let large = LinkedList::ordered(4000);
    let a = sim_mta::simulate_walk_ranking(&small, &params, 1, 8, 200)
        .report
        .issued;
    let b = sim_mta::simulate_walk_ranking(&large, &params, 1, 8, 400)
        .report
        .issued;
    let ratio = b as f64 / a as f64;
    assert!(
        (1.7..2.4).contains(&ratio),
        "instruction count should double with n: ratio {ratio}"
    );
}

#[test]
fn smp_access_counts_match_algorithm_structure() {
    // HJ touches each element a bounded number of times: the simulated
    // access count per element stays within a small constant band.
    let params = SmpParams::tiny_for_tests();
    let n = 10_000usize;
    let list = LinkedList::random(n, &mut Rng::new(5));
    let r = sim_smp::simulate_hj(&list, &params, 2, 8, 5);
    let per_elem = r.stats.accesses() as f64 / n as f64;
    assert!(
        (5.0..12.0).contains(&per_elem),
        "accesses per element {per_elem} outside the expected band"
    );
    // Reads and writes both present; hierarchy conservation holds.
    assert!(r.stats.loads > 0 && r.stats.stores > 0);
    assert_eq!(
        r.stats.l1_hits + r.stats.l2_hits + r.stats.mem_accesses,
        r.stats.accesses()
    );
}

#[test]
fn utilization_is_monotone_in_streams() {
    let params = MtaParams::mta2();
    let list = LinkedList::random(20_000, &mut Rng::new(6));
    let mut last = 0.0;
    for streams in [2usize, 8, 32, 100] {
        let u = sim_mta::simulate_walk_ranking(&list, &params, 1, streams, 2000)
            .report
            .utilization;
        assert!(
            u + 0.05 >= last,
            "utilization should not fall as streams grow: {last} -> {u} at {streams}"
        );
        last = u;
    }
    assert!(last > 0.8, "100 streams should near-saturate: {last}");
}

#[test]
fn mesh_cc_is_cheaper_per_edge_than_random_cc_on_the_smp() {
    // The related-work motif (Krishnamurthy et al.): regular meshes gave
    // distributed/SMP implementations their speedups while sparse random
    // graphs did not — locality again. Per-edge simulated cost on the
    // cache machine must be lower for the mesh.
    let params = SmpParams::sun_e4500();
    let mesh = gen::mesh2d(128, 128); // n = 16384
    let rand = gen::random_gnm(16384, mesh.m(), 7);
    let t_mesh = simulate_sv(&mesh, &params, 4).seconds / mesh.m() as f64;
    let t_rand = simulate_sv(&rand, &params, 4).seconds / rand.m() as f64;
    assert!(
        t_rand > 1.2 * t_mesh,
        "random per-edge cost {t_rand} should exceed mesh {t_mesh}"
    );
}

#[test]
fn star_graph_is_svs_best_case_on_both_machines() {
    // One grafting round suffices on a star (§4: "for the best case, one
    // iteration of the algorithm may be sufficient").
    let star = gen::star(4096);
    let smp = simulate_sv(&star, &SmpParams::tiny_for_tests(), 2);
    assert!(
        smp.iterations <= 2,
        "SMP sim iterations: {}",
        smp.iterations
    );
    let mta =
        archgraph::concomp::sim_mta::simulate_sv_mta(&star, &MtaParams::tiny_for_tests(), 2, 8);
    assert!(
        mta.iterations <= 2,
        "MTA sim iterations: {}",
        mta.iterations
    );
}

#[test]
fn simulated_time_is_additive_over_regions() {
    // The MTA machine accumulates region times; the combined report's
    // seconds equal the machine total.
    let params = MtaParams::tiny_for_tests();
    let list = LinkedList::ordered(3000);
    let r = sim_mta::simulate_walk_ranking(&list, &params, 2, 8, 300);
    assert!(r.report.cycles > 0);
    let per_cycle = 1.0 / params.clock_hz;
    assert!((r.report.seconds - r.report.cycles as f64 * per_cycle).abs() < 1e-9);
}
